#!/usr/bin/env python
"""The nine XMP study tasks against the DBLP-like collection.

For each task: the elaborated description, a correct phrasing, the
generated Schema-Free XQuery, result size, and precision/recall against
the gold standard. Also shows the keyword-search baseline for contrast.

Run with::

    python examples/dblp_queries.py
"""

from repro import Database, NaLIX
from repro.data import generate_dblp
from repro.evaluation.metrics import harmonic_mean, precision_recall
from repro.evaluation.tasks import TASKS
from repro.keyword_search import KeywordSearchEngine


def main():
    database = Database()
    database.load_document(generate_dblp())
    print(database)

    nalix = NaLIX(database)
    keyword = KeywordSearchEngine(database)

    for task in TASKS:
        gold = task.gold(database)
        phrasing = task.good_phrasings()[0]
        print("\n" + "=" * 76)
        print(f"{task.task_id}: {task.description}")
        print("NL:", phrasing.text)
        result = nalix.ask(phrasing.text)
        if not result.ok:
            print(result.render_feedback())
            continue
        print("XQuery:", result.xquery_text)
        precision, recall = precision_recall(
            result.distinct_items(), gold, ordered=task.ordered
        )
        print(
            f"NaLIX:   {len(result.distinct_items())} items, "
            f"P={precision:.2f} R={recall:.2f} "
            f"F={harmonic_mean(precision, recall):.2f}"
        )
        kw_nodes = keyword.search(task.keyword_queries[0])
        kw_p, kw_r = precision_recall(kw_nodes, gold, ordered=task.ordered)
        print(
            f"keyword: {len(kw_nodes)} items, P={kw_p:.2f} R={kw_r:.2f} "
            f"F={harmonic_mean(kw_p, kw_r):.2f} "
            f"(query: {task.keyword_queries[0]!r})"
        )


if __name__ == "__main__":
    main()
