#!/usr/bin/env python
"""Use the Schema-Free XQuery engine directly (no natural language).

Demonstrates the query language the translator targets: FLWOR with
``mqf``, aggregates in nested lets, quantifiers and sorting — evaluated
over the XMP ``bib.xml`` sample.

Run with::

    python examples/xquery_console.py           # scripted demo
    python examples/xquery_console.py --repl    # type raw XQuery
"""

import sys

from repro import Database, evaluate_query
from repro.data import bib_document
from repro.xquery.values import string_value

DEMO_QUERIES = [
    # Titles of Addison-Wesley books after 1991 (XMP Q1, hand-written).
    'for $b in doc("bib.xml")//book, $t in doc("bib.xml")//title,'
    ' $p in doc("bib.xml")//publisher, $y in doc("bib.xml")//@year'
    ' where mqf($b, $t, $p, $y) and $p = "Addison-Wesley" and $y > 1991'
    ' return $t',
    # Books cheaper than average (aggregate in a let).
    'let $prices := { for $p in doc("bib.xml")//price return $p }'
    ' for $b in doc("bib.xml")//book, $p in doc("bib.xml")//price'
    ' where mqf($b, $p) and $p < avg($prices)'
    ' return $b/title',
    # Quantifier: books where some author's last name is Stevens.
    'for $b in doc("bib.xml")//book'
    ' where some $a in $b//author satisfies ($a/last = "Stevens")'
    ' return $b/title',
    # Sorting, descending by price.
    'for $b in doc("bib.xml")//book, $p in doc("bib.xml")//price'
    ' where mqf($b, $p) order by $p descending return $b/title',
]


def render(items):
    return [string_value(item) for item in items]


def main():
    database = Database()
    database.load_document(bib_document())
    print(database)

    if "--repl" in sys.argv:
        print("Type XQuery (empty line to quit).")
        while True:
            try:
                line = input("xquery> ").strip()
            except EOFError:
                break
            if not line:
                break
            try:
                print(render(evaluate_query(database, line)))
            except Exception as error:  # demo REPL: show, keep going
                print("error:", error)
        return

    for query in DEMO_QUERIES:
        print("\n" + "=" * 76)
        print(query)
        print("->", render(evaluate_query(database, query)))


if __name__ == "__main__":
    main()
