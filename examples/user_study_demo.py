#!/usr/bin/env python
"""Run a scaled-down user study and print the paper's figures.

The full 18-participant study is what the benchmarks run; this example
uses 6 participants for a quick demonstration and prints Figure 11,
Figure 12 and Table 7 in the paper's format.

Run with::

    python examples/user_study_demo.py
"""

from repro.evaluation.report import StudyReport
from repro.evaluation.study import Study, StudyConfig


def main():
    config = StudyConfig(participants=6, seed=42)
    study = Study(config)
    print(f"database: {study.database}")
    print(f"simulating {config.participants} participants, both blocks ...")
    results = study.run()
    print()
    print(StudyReport(results).render())


if __name__ == "__main__":
    main()
