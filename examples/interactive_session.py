#!/usr/bin/env python
"""The paper's interactive reformulation loop, scripted.

Re-enacts the Sec. 4 story: the user poses the paper's Query 1, NaLIX
rejects it with a suggestion ("as" -> "the same as"), the user rephrases
into Query 2's form, and the query succeeds.

Run with::

    python examples/interactive_session.py          # scripted replay
    python examples/interactive_session.py --repl   # type your own
"""

import sys

from repro import Database, NaLIX
from repro.data import movies_document

SCRIPTED_TURNS = [
    # The paper's Query 1 — invalid: "as ... as" is outside the grammar.
    "Return every director who has directed as many movies as has "
    "Ron Howard.",
    # The rephrasing a user produces after reading the suggestion
    # (the paper's Query 2).
    "Return every director, where the number of movies directed by the "
    "director is the same as the number of movies directed by Ron Howard.",
]


def show(result):
    if result.ok:
        print("  accepted.")
        print("  XQuery:", result.xquery_text)
        print("  answer:", sorted(set(result.values())))
        for warning in result.warnings:
            print("  ", warning.render())
    else:
        for message in result.errors:
            print("  ", message.render())


def main():
    database = Database()
    database.load_document(movies_document())
    nalix = NaLIX(database)

    if "--repl" in sys.argv:
        print("Type an English query (empty line to quit).")
        while True:
            try:
                line = input("nalix> ").strip()
            except EOFError:
                break
            if not line:
                break
            show(nalix.ask(line))
        return

    for turn, sentence in enumerate(SCRIPTED_TURNS, start=1):
        print(f"\nuser turn {turn}: {sentence}")
        show(nalix.ask(sentence))


if __name__ == "__main__":
    main()
