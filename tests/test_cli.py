"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_database, main


class TestLoadDatabase:
    def test_builtin_datasets(self):
        assert load_database("movies").has_tag("movie")
        assert load_database("bib").has_tag("price")
        assert load_database("dblp", books=10).has_tag("article")

    def test_file_path(self, tmp_path):
        path = tmp_path / "d.xml"
        path.write_text("<a><b>x</b></a>", encoding="utf-8")
        assert load_database(str(path)).has_tag("b")


class TestCommands:
    def test_query_success(self, capsys):
        code = main(
            ["query", "--data", "movies",
             "Return the title of every movie directed by Ron Howard."]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Tribute" in output
        assert "XQuery:" in output

    def test_query_quiet(self, capsys):
        code = main(
            ["query", "--data", "movies", "--quiet",
             "Return the title of every movie."]
        )
        assert code == 0
        assert "XQuery:" not in capsys.readouterr().out

    def test_query_rejection_exit_code(self, capsys):
        code = main(
            ["query", "--data", "movies", "Return the isbn of every movie."]
        )
        assert code == 1
        assert "Error" in capsys.readouterr().out

    def test_xquery_command(self, capsys):
        code = main(
            ["xquery", 'for $t in doc("bib.xml")//title return $t']
        )
        assert code == 0
        assert "TCP/IP Illustrated" in capsys.readouterr().out

    def test_xquery_error_exit_code(self, capsys):
        code = main(["xquery", "this is not xquery"])
        assert code == 1

    def test_tasks_command(self, capsys):
        code = main(["tasks", "--books", "40"])
        output = capsys.readouterr().out
        assert code == 0
        assert output.count("P=") == 9

    def test_study_command(self, capsys):
        code = main(
            ["study", "--participants", "2", "--books", "20", "--seed", "3"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Figure 11" in output
        assert "Table 7" in output

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "dblp.xml"
        code = main(["generate", "--books", "5", "--out", str(out)])
        assert code == 0
        assert out.exists()
        from repro.database.store import Database

        database = Database()
        database.load_file(out)
        assert database.has_tag("book")

    def test_generate_to_stdout(self, capsys):
        code = main(["generate", "--books", "5"])
        assert code == 0
        assert "<dblp>" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("query", "repl", "xquery", "tasks", "study",
                        "generate"):
            args = parser.parse_args(
                [command] + (["x"] if command in ("query", "xquery") else [])
            )
            assert args.command == command
