"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_database, main


class TestLoadDatabase:
    def test_builtin_datasets(self):
        assert load_database("movies").has_tag("movie")
        assert load_database("bib").has_tag("price")
        assert load_database("dblp", books=10).has_tag("article")

    def test_file_path(self, tmp_path):
        path = tmp_path / "d.xml"
        path.write_text("<a><b>x</b></a>", encoding="utf-8")
        assert load_database(str(path)).has_tag("b")


class TestCommands:
    def test_query_success(self, capsys):
        code = main(
            ["query", "--data", "movies",
             "Return the title of every movie directed by Ron Howard."]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Tribute" in output
        assert "XQuery:" in output

    def test_query_quiet(self, capsys):
        code = main(
            ["query", "--data", "movies", "--quiet",
             "Return the title of every movie."]
        )
        assert code == 0
        assert "XQuery:" not in capsys.readouterr().out

    def test_query_rejection_exit_code(self, capsys):
        code = main(
            ["query", "--data", "movies", "Return the isbn of every movie."]
        )
        assert code == 1
        assert "Error" in capsys.readouterr().out

    def test_xquery_command(self, capsys):
        code = main(
            ["xquery", 'for $t in doc("bib.xml")//title return $t']
        )
        assert code == 0
        assert "TCP/IP Illustrated" in capsys.readouterr().out

    def test_xquery_error_exit_code(self, capsys):
        code = main(["xquery", "this is not xquery"])
        assert code == 1

    def test_tasks_command(self, capsys):
        code = main(["tasks", "--books", "40"])
        output = capsys.readouterr().out
        assert code == 0
        assert output.count("P=") == 9

    def test_study_command(self, capsys):
        code = main(
            ["study", "--participants", "2", "--books", "20", "--seed", "3"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Figure 11" in output
        assert "Table 7" in output

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "dblp.xml"
        code = main(["generate", "--books", "5", "--out", str(out)])
        assert code == 0
        assert out.exists()
        from repro.database.store import Database

        database = Database()
        database.load_file(out)
        assert database.has_tag("book")

    def test_generate_to_stdout(self, capsys):
        code = main(["generate", "--books", "5"])
        assert code == 0
        assert "<dblp>" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_query_trace_prints_span_tree(self, capsys):
        code = main(
            ["query", "--data", "movies", "--trace",
             "Return the title of every movie."]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "ask" in output
        assert "├─ parse" in output
        assert "└─ evaluate" in output
        assert "[ok]" in output

    def test_query_metrics_dump(self, capsys):
        code = main(
            ["query", "--data", "movies", "--metrics",
             "Return the title of every movie."]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert '"pipeline.queries"' in output
        assert '"pipeline.stage.translate.seconds"' in output

    def test_query_audit_log(self, tmp_path, capsys):
        from repro.obs.audit import read_audit_log

        path = tmp_path / "audit.jsonl"
        code = main(
            ["query", "--data", "movies", "--audit-log", str(path),
             "Return the title of every movie."]
        )
        assert code == 0
        (entry,) = read_audit_log(str(path))
        assert entry["status"] == "ok"
        assert entry["actor"] == "cli"

    def test_stats_command(self, capsys):
        code = main(["stats", "--books", "10"])
        output = capsys.readouterr().out
        assert code == 0
        assert "stage" in output
        assert "parse" in output
        assert "evaluate" in output
        assert "status: ok=" in output
        assert "rejected=" in output
        assert "failures by category:" in output

    def test_stats_good_only(self, capsys):
        code = main(["stats", "--books", "10", "--good-only"])
        output = capsys.readouterr().out
        assert code == 0
        assert "rejected=0" in output

    def test_tasks_audit_log(self, tmp_path, capsys):
        from repro.obs.audit import read_audit_log

        path = tmp_path / "audit.jsonl"
        code = main(
            ["tasks", "--books", "20", "--audit-log", str(path)]
        )
        assert code == 0
        entries = read_audit_log(str(path))
        assert len(entries) == 9
        assert all(
            entry["status"] in {"ok", "degraded", "rejected", "failed"}
            for entry in entries
        )


class TestExplainCommands:
    def test_explain_prints_lineage(self, capsys):
        code = main(
            ["explain", "--data", "movies",
             "Return the title of every movie directed by Ron Howard."]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "EXPLAIN" in output
        assert "Clause lineage (Figs. 4-6):" in output
        assert "Table 1:" in output
        assert "XQuery" in output
        assert "Plan (per-operator statistics):" in output

    def test_explain_rejected_shows_production(self, capsys):
        code = main(
            ["explain", "--data", "movies",
             "Return the isbn of every movie."]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "status: rejected" in output
        assert "production:" in output

    def test_explain_json(self, capsys):
        import json

        code = main(
            ["explain", "--data", "movies", "--json",
             "Return the title of every movie."]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert report["provenance"]["tokens"]
        assert report["provenance"]["clauses"]
        assert report["plan"]["operators"]

    def test_explain_no_evaluate_skips_plan(self, capsys):
        code = main(
            ["explain", "--data", "movies", "--no-evaluate",
             "Return the title of every movie."]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Plan (per-operator statistics):" not in output

    def test_query_explain_flag(self, capsys):
        code = main(
            ["query", "--data", "movies", "--explain",
             "Return the title of every movie."]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "XQuery:" in output          # the normal result block ...
        assert "lineage" in output          # ... plus the explain report

    def test_stats_format_prom(self, capsys):
        code = main(["stats", "--books", "10", "--format", "prom"])
        output = capsys.readouterr().out
        assert code == 0
        from tests.obs.test_export import parse_prometheus_text

        metrics = parse_prometheus_text(output)
        assert "repro_pipeline_queries_total" in metrics
        assert "repro_window_total_seconds" in metrics

    def test_stats_format_chrome_to_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        code = main(
            ["stats", "--books", "10", "--good-only",
             "--format", "chrome", "--out", str(out)]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        document = json.loads(out.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        assert sum(1 for event in events if event["ph"] == "X") > 0

    def test_stats_format_json(self, capsys):
        import json

        code = main(["stats", "--books", "10", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["pipeline.queries"] > 0
        assert "total" in payload["latency_windows"]

    def test_stats_table_has_percentiles(self, capsys):
        code = main(["stats", "--books", "10"])
        output = capsys.readouterr().out
        assert code == 0
        assert "p50" in output
        assert "p95" in output
        assert "p99" in output


class TestResilienceFlags:
    def test_inject_fault_at_evaluate_degrades(self, capsys):
        code = main(
            ["query", "--data", "movies", "--inject-fault", "evaluate",
             "--trace", "Return the title of every movie."]
        )
        output = capsys.readouterr().out
        assert code == 0  # a degraded answer is still an answer
        assert "approximate results" in output
        assert "evaluate-naive" in output

    def test_inject_fault_at_parse_fails_cleanly(self, capsys):
        code = main(
            ["query", "--data", "movies", "--inject-fault", "parse",
             "Return the title of every movie."]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "injected" in output

    def test_inject_fault_bad_spec_exits(self):
        with pytest.raises(SystemExit):
            main(
                ["query", "--data", "movies", "--inject-fault", "nope",
                 "Return every movie."]
            )

    def test_timeout_flag(self, capsys):
        code = main(
            ["query", "--data", "movies", "--timeout", "30",
             "Return the title of every movie."]
        )
        assert code == 0
        code = main(
            ["query", "--data", "movies", "--timeout", "0",
             "Return the title of every movie."]
        )
        assert code == 1
        assert "budget" in capsys.readouterr().out

    def test_stats_resilience_counters(self, capsys, monkeypatch):
        from repro.obs.metrics import METRICS

        METRICS.counter("resilience.faults.injected").inc()
        code = main(["stats", "--books", "10", "--good-only"])
        output = capsys.readouterr().out
        assert code == 0
        assert "resilience counters:" in output
        assert "resilience.faults.injected" in output


class TestProfilingFlags:
    QUERY = (
        "Return every director, where the number of movies directed by "
        "the director is the same as the number of movies directed by "
        "Ron Howard."
    )

    def test_query_profile_writes_collapsed_file(self, tmp_path, capsys):
        out = tmp_path / "profile.collapsed"
        code = main(
            ["query", "--data", "movies", "--profile",
             "--profile-out", str(out), self.QUERY]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert out.exists()
        assert "profile:" in output
        stages = {
            "parse", "classify", "validate", "translate", "xquery-parse",
            "evaluate", "evaluate-naive", "evaluate-keyword", "ask",
            "(no-span)",
        }
        for line in out.read_text(encoding="utf-8").splitlines():
            stack, _, count = line.rpartition(" ")
            assert count.isdigit()
            assert stack.startswith("span:")
            # The root frame is a span-attribution frame for a real
            # pipeline stage (or the no-span bucket).
            root = stack.split(";", 1)[0].removeprefix("span:")
            assert root in stages

    def test_query_profile_default_out(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["query", "--data", "movies", "--profile",
             "Return the title of every movie."]
        )
        assert code == 0
        assert (tmp_path / "profile.collapsed").exists()

    def test_profile_subcommand_stdout_is_pipeable(self, capsys):
        code = main(
            ["profile", "--data", "movies", "--repeat", "5",
             "--hz", "500", self.QUERY]
        )
        captured = capsys.readouterr()
        assert code == 0
        # Summary lines go to stderr; stdout carries only stack lines.
        assert "profile:" in captured.err
        for line in captured.out.splitlines():
            stack, _, count = line.rpartition(" ")
            assert count.isdigit()
            assert stack.startswith("span:")

    def test_profile_subcommand_speedscope(self, tmp_path, capsys):
        import json

        out = tmp_path / "profile.speedscope.json"
        code = main(
            ["profile", "--data", "movies", "--repeat", "3",
             "--format", "speedscope", "--out", str(out),
             "Return the title of every movie."]
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["$schema"].startswith("https://www.speedscope.app")
        assert document["profiles"][0]["type"] == "sampled"

    def test_profile_rejected_query_exit_code(self, capsys):
        code = main(
            ["profile", "--data", "movies", "--repeat", "1",
             "Return the isbn of every movie."]
        )
        assert code == 1

    def test_query_memory_flag(self, tmp_path, capsys):
        from repro.obs.audit import read_audit_log

        path = tmp_path / "audit.jsonl"
        code = main(
            ["query", "--data", "movies", "--memory",
             "--audit-log", str(path),
             "Return the title of every movie."]
        )
        assert code == 0
        (entry,) = read_audit_log(str(path))
        assert entry["alloc_bytes"] > 0
        assert entry["peak_rss_bytes"] > 0

    def test_stats_memory_columns(self, capsys):
        code = main(["stats", "--books", "10", "--good-only", "--memory"])
        output = capsys.readouterr().out
        assert code == 0
        assert "alloc KiB" in output
        assert "memory: peak rss" in output
        assert "KiB/query" in output


class TestBenchCheck:
    BASELINE = {
        "repeats": 5,
        "tasks": {
            "Q1": {
                "sentence": "Return every book.",
                "status": "ok",
                "runs": 5,
                "mean_seconds": 0.010,
                "p95_seconds": 0.012,
                "samples_seconds": [0.009, 0.010, 0.010, 0.011, 0.012],
                "stage_mean_seconds": {"parse": 0.001, "evaluate": 0.008},
                "stage_samples_seconds": {
                    "parse": [0.001] * 5,
                    "evaluate": [0.007, 0.008, 0.008, 0.008, 0.009],
                },
            },
        },
    }

    def _write(self, tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_identical_results_pass(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", self.BASELINE)
        code = main(
            ["bench-check", "--baseline", baseline, "--current", baseline]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "RESULT: PASS" in output

    def test_handicapped_stage_fails_gate(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", self.BASELINE)
        code = main(
            ["bench-check", "--baseline", baseline, "--current", baseline,
             "--handicap", "evaluate=3"]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "RESULT: FAIL (perf regression)" in output
        assert "stage:evaluate" in output

    def test_json_report(self, tmp_path, capsys):
        import json

        baseline = self._write(tmp_path, "baseline.json", self.BASELINE)
        code = main(
            ["bench-check", "--baseline", baseline, "--current", baseline,
             "--handicap", "evaluate=3", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["counts"]["fail"] > 0

    def test_github_annotations(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", self.BASELINE)
        code = main(
            ["bench-check", "--baseline", baseline, "--current", baseline,
             "--handicap", "evaluate=3", "--github", "--out",
             str(tmp_path / "report.txt")]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "::error title=perf regression::" in output

    def test_save_current(self, tmp_path, capsys):
        import json

        baseline = self._write(tmp_path, "baseline.json", self.BASELINE)
        saved = tmp_path / "current.json"
        code = main(
            ["bench-check", "--baseline", baseline, "--current", baseline,
             "--save-current", str(saved)]
        )
        assert code == 0
        assert json.loads(saved.read_text(encoding="utf-8"))["tasks"]

    def test_missing_baseline_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench-check", "--baseline", str(tmp_path / "nope.json")])

    def test_bad_handicap_exits(self, tmp_path):
        baseline = self._write(tmp_path, "baseline.json", self.BASELINE)
        with pytest.raises(SystemExit):
            main(
                ["bench-check", "--baseline", baseline,
                 "--current", baseline, "--handicap", "evaluate"]
            )

    def test_bad_tolerance_exits(self, tmp_path):
        baseline = self._write(tmp_path, "baseline.json", self.BASELINE)
        with pytest.raises(SystemExit):
            main(
                ["bench-check", "--baseline", baseline,
                 "--current", baseline, "--warn", "2.0", "--fail", "0.5"]
            )


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("query", "repl", "xquery", "tasks", "stats",
                        "profile", "bench-check", "study", "generate"):
            args = parser.parse_args(
                [command]
                + (["x"] if command in ("query", "xquery", "profile")
                   else [])
            )
            assert args.command == command


class TestStatsFromLog:
    """``stats --from-log``: audit logs read via the shared parser."""

    def _capture(self, tmp_path, capsys):
        log = tmp_path / "audit.jsonl"
        assert main(
            ["query", "--data", "movies", "--audit-log", str(log),
             "Return the title of every movie."]
        ) == 0
        capsys.readouterr()
        return log

    def test_summarizes_a_recorded_log(self, tmp_path, capsys):
        log = self._capture(tmp_path, capsys)
        code = main(["stats", "--from-log", str(log)])
        output = capsys.readouterr().out
        assert code == 0
        assert "queries: 1" in output
        assert "with answer digest: 1" in output
        assert "ok=1" in output
        assert "p50" in output

    def test_json_format_counts_corruption(self, tmp_path, capsys):
        import json

        log = tmp_path / "audit.jsonl"
        log.write_text(
            '{"sentence": "a", "status": "ok", "answer_digest": "ab", '
            '"total_seconds": 0.01}\n'
            "%%% not json %%%\n",
            encoding="utf-8",
        )
        code = main(["stats", "--from-log", str(log), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == 1
        assert payload["corrupt_skipped"] == 1
        assert payload["with_answer_digest"] == 1
        assert payload["statuses"] == {"ok": 1}

    def test_rotated_sibling_is_chained(self, tmp_path, capsys):
        import json

        log = tmp_path / "audit.jsonl"
        (tmp_path / "audit.jsonl.1").write_text(
            '{"sentence": "old", "status": "ok"}\n', encoding="utf-8"
        )
        log.write_text(
            '{"sentence": "new", "status": "ok"}\n', encoding="utf-8"
        )
        code = main(["stats", "--from-log", str(log), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == 2
        assert payload["files"] == 2

    def test_event_lines_are_counted_not_queried(self, tmp_path, capsys):
        import json

        log = tmp_path / "audit.jsonl"
        log.write_text(
            '{"event": "canary-drift", "tenant": "_canary"}\n'
            '{"sentence": "a", "status": "ok"}\n',
            encoding="utf-8",
        )
        code = main(["stats", "--from-log", str(log), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == 1
        assert payload["events"] == {"canary-drift": 1}

    def test_missing_file_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["stats", "--from-log", "/nonexistent/audit.jsonl"])

    def test_unsupported_format_exits(self, tmp_path):
        log = tmp_path / "audit.jsonl"
        log.write_text("", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["stats", "--from-log", str(log), "--format", "prom"])


class TestReplayCommand:
    """``repro replay``: differential replay through the CLI."""

    def _capture(self, tmp_path, capsys):
        log = tmp_path / "audit.jsonl"
        assert main(
            ["query", "--data", "movies", "--audit-log", str(log),
             "Return the title of every movie."]
        ) == 0
        capsys.readouterr()
        return log

    def test_fresh_log_matches_and_exits_zero(self, tmp_path, capsys):
        log = self._capture(tmp_path, capsys)
        code = main(["replay", str(log), "--data", "movies"])
        output = capsys.readouterr().out
        assert code == 0
        assert "replay verdict: PASS" in output
        assert "1 pass" in output

    def test_mutated_digest_fails_with_github_annotation(
        self, tmp_path, capsys
    ):
        import json

        log = self._capture(tmp_path, capsys)
        record = json.loads(log.read_text(encoding="utf-8"))
        record["answer_digest"] = "0" * 16
        log.write_text(json.dumps(record) + "\n", encoding="utf-8")
        code = main(["replay", str(log), "--data", "movies", "--github"])
        output = capsys.readouterr().out
        assert code == 1
        assert "answer drift" in output
        assert "::error title=answer drift::" in output

    def test_json_report(self, tmp_path, capsys):
        import json

        log = self._capture(tmp_path, capsys)
        code = main(
            ["replay", str(log), "--data", "movies", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["fail"] == 0
        assert payload["rows"][0]["verdict"] == "pass"

    def test_missing_log_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "/nonexistent/audit.jsonl", "--data", "movies"])
