"""Shared fixtures for the test suite."""

import pytest

from repro.core.interface import NaLIX
from repro.data import DblpConfig, bib_document, generate_dblp, movies_document
from repro.database.store import Database


@pytest.fixture(scope="session")
def movie_database():
    database = Database()
    database.load_document(movies_document())
    return database


@pytest.fixture(scope="session")
def bib_database():
    database = Database()
    database.load_document(bib_document())
    return database


@pytest.fixture(scope="session")
def small_dblp_database():
    database = Database()
    database.load_document(generate_dblp(DblpConfig(books=30, articles=40)))
    return database


@pytest.fixture(scope="session")
def movie_nalix(movie_database):
    return NaLIX(movie_database)


@pytest.fixture(scope="session")
def dblp_nalix(small_dblp_database):
    return NaLIX(small_dblp_database)
