"""Every circuit-breaker transition, driven by a fake clock (no sleeps)."""

import pytest

from repro.resilience.breaker import (
    BREAKER_CLASSES,
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(clock, **overrides):
    kwargs = dict(window=8, failure_threshold=0.5, min_samples=4,
                  open_seconds=5.0, half_open_probes=2, clock=clock)
    kwargs.update(overrides)
    return CircuitBreaker("internal", **kwargs)


class TestClosedState:
    def test_starts_closed(self):
        breaker = make_breaker(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == 0.0

    def test_stays_closed_below_min_samples(self):
        breaker = make_breaker(FakeClock())
        for _ in range(3):  # min_samples=4: three failures cannot trip
            breaker.record(failed=True)
        assert breaker.state == CLOSED

    def test_trips_open_at_threshold(self):
        breaker = make_breaker(FakeClock())
        breaker.record(failed=False)
        breaker.record(failed=False)
        breaker.record(failed=True)
        assert breaker.state == CLOSED  # 1/3, below min_samples
        breaker.record(failed=True)     # 2/4 = threshold, enough samples
        assert breaker.state == OPEN

    def test_stays_closed_below_threshold(self):
        breaker = make_breaker(FakeClock())
        for _ in range(7):
            breaker.record(failed=False)
        breaker.record(failed=True)  # 1/8 < 0.5
        assert breaker.state == CLOSED

    def test_window_is_rolling(self):
        # Old failures fall off the deque: 4 failures then 8 successes
        # leaves a fully healthy window.
        breaker = make_breaker(FakeClock(), min_samples=16, window=8)
        for _ in range(4):
            breaker.record(failed=True)
        for _ in range(8):
            breaker.record(failed=False)
        assert breaker.failure_rate() == 0.0


class TestOpenToHalfOpen:
    def test_open_goes_half_open_after_timeout(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(failed=True)
        assert breaker.state == OPEN
        clock.advance(4.99)
        assert breaker.state == OPEN
        clock.advance(0.01)
        assert breaker.state == HALF_OPEN

    def test_outcomes_recorded_while_open_are_ignored(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(failed=True)
        breaker.record(failed=False)  # non-probe traffic while open
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        # The window did not accumulate those outcomes.
        assert breaker.snapshot()["samples"] == 4


class TestHalfOpenProbes:
    def tripped(self, clock):
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(failed=True)
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        return breaker

    def test_probe_slots_are_limited(self):
        clock = FakeClock()
        breaker = self.tripped(clock)
        assert breaker.acquire_probe() is True
        assert breaker.acquire_probe() is True   # half_open_probes=2
        assert breaker.acquire_probe() is False  # no third slot

    def test_no_probe_while_closed_or_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        assert breaker.acquire_probe() is False  # closed
        for _ in range(4):
            breaker.record(failed=True)
        assert breaker.acquire_probe() is False  # open

    def test_probe_successes_close_the_breaker(self):
        clock = FakeClock()
        breaker = self.tripped(clock)
        assert breaker.acquire_probe()
        breaker.record(failed=False, probe=True)
        assert breaker.state == HALF_OPEN  # one success is not enough
        assert breaker.acquire_probe()
        breaker.record(failed=False, probe=True)
        assert breaker.state == CLOSED
        # Closing resets the window: the old failures are forgiven.
        assert breaker.failure_rate() == 0.0

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.tripped(clock)
        assert breaker.acquire_probe()
        breaker.record(failed=True, probe=True)
        assert breaker.state == OPEN
        # ... for another full open_seconds.
        clock.advance(4.99)
        assert breaker.state == OPEN
        clock.advance(0.01)
        assert breaker.state == HALF_OPEN

    def test_probe_release_frees_the_slot(self):
        clock = FakeClock()
        breaker = self.tripped(clock)
        assert breaker.acquire_probe()
        assert breaker.acquire_probe()
        assert not breaker.acquire_probe()
        breaker.record(failed=False, probe=True)
        assert breaker.acquire_probe()  # the finished probe freed a slot

    def test_reclose_then_retrip(self):
        # The machine keeps working after one full cycle.
        clock = FakeClock()
        breaker = self.tripped(clock)
        for _ in range(2):
            breaker.acquire_probe()
            breaker.record(failed=False, probe=True)
        assert breaker.state == CLOSED
        for _ in range(4):
            breaker.record(failed=True)
        assert breaker.state == OPEN
        assert breaker.snapshot()["opened_total"] == 2


class TestValidation:
    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=1.5)

    def test_bad_min_samples_and_probes_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", min_samples=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", half_open_probes=0)


class TestBreakerBoard:
    def test_one_breaker_per_service_class(self):
        board = BreakerBoard(min_samples=2, failure_threshold=0.5)
        assert set(board.breakers) == set(BREAKER_CLASSES)

    def test_record_fans_out_by_class(self):
        board = BreakerBoard(min_samples=2, failure_threshold=1.0)
        board.record("internal")
        board.record("internal")
        assert board.breakers["internal"].state == OPEN
        assert board.breakers["exhausted"].state == CLOSED
        assert board.any_open()

    def test_rejected_is_nobodys_failure(self):
        board = BreakerBoard(min_samples=2, failure_threshold=0.5)
        for _ in range(8):
            board.record("rejected")
        assert not board.any_open()

    def test_acquire_probe_finds_the_half_open_breaker(self):
        clock = FakeClock()
        board = BreakerBoard(min_samples=2, failure_threshold=1.0,
                             open_seconds=1.0, half_open_probes=1,
                             clock=clock)
        assert board.acquire_probe() is False
        board.record("exhausted")
        board.record("exhausted")
        clock.advance(1.0)
        assert board.acquire_probe() is True

    def test_snapshot_has_all_classes(self):
        board = BreakerBoard()
        snap = board.snapshot()
        assert set(snap) == set(BREAKER_CLASSES)
        assert all(entry["state"] == CLOSED for entry in snap.values())
