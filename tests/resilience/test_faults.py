"""Chaos suite: deterministic fault injection at every pipeline stage.

Proves the acceptance contract of the resilience layer: a fault at any
of the six pipeline stages yields a *classified* QueryResult (never an
unhandled exception), a complete span tree, and an audit-log entry.
"""

import pytest

from repro.core.interface import NaLIX
from repro.obs.audit import AuditLog, read_audit_log
from repro.obs.metrics import METRICS
from repro.resilience.errors import ErrorClass
from repro.resilience.faults import FAULT_STAGES, FaultPlan, FaultSpec

pytestmark = pytest.mark.chaos

SENTENCE = "Return the title of every movie."


class TestFaultAtEveryStage:
    @pytest.mark.parametrize("stage", FAULT_STAGES)
    def test_fault_yields_classified_result(
        self, stage, movie_database, tmp_path
    ):
        audit_path = tmp_path / "audit.jsonl"
        nalix = NaLIX(
            movie_database,
            fault_plan=FaultPlan([FaultSpec(stage)]),
            audit_log=AuditLog(str(audit_path)),
        )
        result = nalix.ask(SENTENCE)  # must not raise

        # A classified outcome, never an unhandled crash.  The static-
        # analysis gate fails open (an analyzer fault serves the query
        # unchecked with a warning); every other stage degrades or fails.
        if stage == "analyze":
            assert result.status == "ok"
            assert any(
                m.code == "analysis-unavailable" for m in result.warnings
            )
        else:
            assert result.status in ("degraded", "failed")
            assert result.error_class in (
                ErrorClass.DEGRADED, ErrorClass.INTERNAL
            )
            assert result.retryable

        # The two evaluation-side stages degrade to a fallback answer;
        # the earlier stages fail with the injected-fault code.
        if stage in ("xquery-parse", "evaluate"):
            assert result.status == "degraded"
            assert result.degradation_path
            assert any(
                m.code == "degraded-answer" for m in result.warnings
            )
        elif stage != "analyze":
            assert result.status == "failed"
            assert any(m.code == "injected-fault" for m in result.errors)

        # A complete span tree: every span finished, the root errored
        # stage marked.
        spans = list(result.trace.iter_spans())
        assert spans
        assert all(span.ended_at is not None for span in spans)
        assert result.trace.find(stage) is not None

        # An audit record with the classification.
        nalix.audit_log.close()
        (entry,) = read_audit_log(str(audit_path))
        assert entry["sentence"] == SENTENCE
        assert entry["status"] == result.status
        assert entry.get("error_class") == result.error_class
        assert entry.get("retryable", False) == result.retryable

    def test_fault_counters(self, movie_database):
        before = METRICS.counter("resilience.faults.injected").value
        nalix = NaLIX(movie_database, fault_plan=[FaultSpec("validate")])
        nalix.ask(SENTENCE)
        assert METRICS.counter("resilience.faults.injected").value == before + 1
        assert METRICS.counter("resilience.faults.injected.validate").value >= 1


class TestTriggers:
    def test_at_call_fires_on_nth_call_only(self, movie_database):
        nalix = NaLIX(
            movie_database,
            fault_plan=[FaultSpec("evaluate", at_call=2)],
            degrade=False,
        )
        assert nalix.ask(SENTENCE).status == "ok"
        assert nalix.ask(SENTENCE).status == "failed"
        assert nalix.ask(SENTENCE).status == "ok"

    def test_probability_is_deterministic_per_seed(self, movie_database):
        def outcomes():
            nalix = NaLIX(
                movie_database,
                fault_plan=[FaultSpec("evaluate", probability=0.5, seed=42)],
                degrade=False,
            )
            return [nalix.ask(SENTENCE).status for _ in range(8)]

        first, second = outcomes(), outcomes()
        assert first == second
        assert "failed" in first and "ok" in first

    def test_reset_rewinds_triggers(self, movie_database):
        plan = FaultPlan([FaultSpec("evaluate", at_call=1)])
        nalix = NaLIX(movie_database, fault_plan=plan, degrade=False)
        assert nalix.ask(SENTENCE).status == "failed"
        assert nalix.ask(SENTENCE).status == "ok"
        plan.reset()
        assert nalix.ask(SENTENCE).status == "failed"

    def test_custom_exception_class(self, movie_database):
        plan = FaultPlan([FaultSpec("evaluate", exception=MemoryError)])
        nalix = NaLIX(movie_database, fault_plan=plan, degrade=False)
        result = nalix.ask(SENTENCE)
        assert result.status == "failed"
        assert result.error_class == ErrorClass.INTERNAL
        assert any(m.code == "internal-error" for m in result.errors)


class TestDelayFaults:
    def test_delay_injects_latency_not_failure(self, movie_database):
        nalix = NaLIX(
            movie_database,
            fault_plan=[FaultSpec("evaluate", delay=0.05)],
        )
        before = METRICS.counter("resilience.faults.delayed").value
        stage_before = METRICS.counter(
            "resilience.faults.delayed.evaluate"
        ).value
        result = nalix.ask(SENTENCE)
        # The stage proceeds normally after the sleep: a full-fidelity
        # answer, just slower.
        assert result.status == "ok"
        assert result.stage_seconds("evaluate") >= 0.05
        assert METRICS.counter("resilience.faults.delayed").value == before + 1
        assert (METRICS.counter("resilience.faults.delayed.evaluate").value
                == stage_before + 1)

    def test_delay_and_exception_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            FaultSpec("evaluate", delay=0.1, exception=RuntimeError)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("evaluate", delay=-0.1)

    def test_all_matching_delays_apply_then_exception_raises(
        self, movie_database
    ):
        # A delayed *and* faulted stage: latency lands first, then the
        # classified failure — the chaos benchmark's hard-stall shape.
        nalix = NaLIX(
            movie_database,
            fault_plan=[FaultSpec("evaluate", delay=0.05),
                        FaultSpec("evaluate")],
            degrade=False,
        )
        result = nalix.ask(SENTENCE)
        assert result.status == "failed"
        assert result.stage_seconds("evaluate") >= 0.05


class TestTenantScoping:
    def test_scoped_spec_only_fires_for_its_tenant(self, movie_database):
        from repro.resilience.faults import fault_scope

        nalix = NaLIX(
            movie_database,
            fault_plan=[FaultSpec("evaluate", tenant="acme")],
            degrade=False,
        )
        with fault_scope("other"):
            assert nalix.ask(SENTENCE).status == "ok"
        assert nalix.ask(SENTENCE).status == "ok"  # unscoped request
        with fault_scope("acme"):
            assert nalix.ask(SENTENCE).status == "failed"

    def test_unscoped_spec_hits_every_tenant(self, movie_database):
        from repro.resilience.faults import current_fault_tenant, fault_scope

        nalix = NaLIX(
            movie_database,
            fault_plan=[FaultSpec("evaluate")],
            degrade=False,
        )
        with fault_scope("acme"):
            assert current_fault_tenant() == "acme"
            assert nalix.ask(SENTENCE).status == "failed"
        assert current_fault_tenant() is None


class TestSpecParsing:
    def test_bare_stage(self):
        spec = FaultPlan.parse_spec("evaluate")
        assert spec.stage == "evaluate"
        assert spec.at_call is None and spec.probability is None

    def test_nth_call(self):
        spec = FaultPlan.parse_spec("translate:3")
        assert spec.stage == "translate" and spec.at_call == 3

    def test_probability_with_seed(self):
        spec = FaultPlan.parse_spec("parse:p=0.25,seed=9")
        assert spec.probability == 0.25 and spec.seed == 9

    def test_probability_long_form_alias(self):
        spec = FaultPlan.parse_spec("evaluate:probability=0.1")
        assert spec.probability == 0.1

    def test_delay_option(self):
        spec = FaultPlan.parse_spec("evaluate:p=0.1,delay=0.25")
        assert spec.delay == 0.25 and spec.probability == 0.1

    def test_tenant_option(self):
        spec = FaultPlan.parse_spec("evaluate:p=0.5,tenant=acme")
        assert spec.tenant == "acme"

    def test_at_option_long_form(self):
        spec = FaultPlan.parse_spec("translate:at=3")
        assert spec.at_call == 3

    def test_option_spec_without_trigger_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse_spec("evaluate:tenant=acme")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse_spec("frobnicate")

    def test_bad_option_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse_spec("evaluate:q=1")

    def test_coerce_accepts_string_spec_and_plan(self):
        plan = FaultPlan.coerce("evaluate:2")
        assert isinstance(plan, FaultPlan)
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(None) is None
        single = FaultPlan.coerce(FaultSpec("parse"))
        assert single.specs[0].stage == "parse"
