"""The shared client retry policy: pure decision logic, fully unit-tested."""

import pytest

from repro.resilience.retry import (
    RETRYABLE_STATUSES,
    RetryPolicy,
    parse_retry_after,
)


class TestShouldRetry:
    def test_retries_retryable_statuses(self):
        policy = RetryPolicy(max_attempts=3)
        for status in sorted(RETRYABLE_STATUSES):
            assert policy.should_retry(1, status=status)

    def test_never_past_max_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(2, status=503)
        assert not policy.should_retry(3, status=503)
        assert not policy.should_retry(7, status=503)

    def test_rejected_is_never_retried(self):
        # 422 means "rephrase": repeating the same sentence cannot help.
        policy = RetryPolicy(max_attempts=5)
        assert not policy.should_retry(1, status=422)

    def test_success_is_never_retried(self):
        policy = RetryPolicy(max_attempts=5)
        assert not policy.should_retry(1, status=200)

    def test_transport_errors_always_retry(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(1, transport_error=True)
        assert not policy.should_retry(2, transport_error=True)

    def test_body_retryable_false_vetoes(self):
        # The server classified the failure as not worth repeating.
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1, status=500, retryable=True)
        assert not policy.should_retry(1, status=500, retryable=False)

    def test_none_policy_never_retries(self):
        policy = RetryPolicy.none()
        assert not policy.should_retry(1, status=503)
        assert not policy.should_retry(1, transport_error=True)
        assert not policy.hedge_after_p95


class TestBackoff:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0,
                             max_backoff=10.0, jitter=False)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)

    def test_capped_at_max_backoff(self):
        policy = RetryPolicy(base_backoff=1.0, multiplier=10.0,
                             max_backoff=2.5, jitter=False)
        assert policy.backoff_seconds(4) == pytest.approx(2.5)

    def test_jitter_is_seeded_and_bounded(self):
        a = RetryPolicy(base_backoff=0.1, seed=7)
        b = RetryPolicy(base_backoff=0.1, seed=7)
        seq_a = [a.backoff_seconds(n) for n in (1, 2, 3)]
        seq_b = [b.backoff_seconds(n) for n in (1, 2, 3)]
        assert seq_a == seq_b  # same seed, same stream
        assert all(0.0 <= s <= 0.4 for s in seq_a)  # full jitter in [0, raw]
        different = RetryPolicy(base_backoff=0.1, seed=8)
        assert [different.backoff_seconds(n) for n in (1, 2, 3)] != seq_a

    def test_retry_after_wins_over_backoff(self):
        policy = RetryPolicy(base_backoff=5.0, jitter=False)
        assert policy.backoff_seconds(1, retry_after=0.25) == 0.25
        assert policy.backoff_seconds(1, retry_after=0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1)


class TestParseRetryAfter:
    def test_delta_seconds(self):
        assert parse_retry_after("3") == 3.0
        assert parse_retry_after("0.5") == 0.5

    def test_negative_clamps_to_zero(self):
        assert parse_retry_after("-2") == 0.0

    def test_missing_or_http_date_is_none(self):
        assert parse_retry_after(None) is None
        assert parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT") is None
