"""The failure taxonomy and its surfacing on QueryResult."""

from repro.resilience.errors import (
    BudgetExceeded,
    ErrorClass,
    InjectedFault,
    classify_codes,
    describe_failure,
    is_retryable,
)
from repro.xquery.errors import XQueryEvaluationError


class TestClassifyCodes:
    def test_empty_is_none(self):
        assert classify_codes([]) is None

    def test_validation_codes_are_rejected(self):
        assert classify_codes(["unknown-name"]) == ErrorClass.REJECTED
        assert classify_codes(["parse-failure"]) == ErrorClass.REJECTED

    def test_system_codes_are_internal(self):
        assert classify_codes(["translation-failure"]) == ErrorClass.INTERNAL
        assert classify_codes(["evaluation-failure"]) == ErrorClass.INTERNAL
        assert classify_codes(["internal-error"]) == ErrorClass.INTERNAL
        assert classify_codes(["injected-fault"]) == ErrorClass.INTERNAL

    def test_exhaustion_dominates(self):
        assert (
            classify_codes(["evaluation-failure", "budget-exhausted"])
            == ErrorClass.EXHAUSTED
        )

    def test_internal_dominates_rejected(self):
        assert (
            classify_codes(["unknown-name", "internal-error"])
            == ErrorClass.INTERNAL
        )


class TestRetryability:
    def test_flags(self):
        assert not is_retryable(ErrorClass.REJECTED)
        assert is_retryable(ErrorClass.DEGRADED)
        assert is_retryable(ErrorClass.EXHAUSTED)
        assert is_retryable(ErrorClass.INTERNAL)
        assert not is_retryable(None)


class TestDescribeFailure:
    def test_budget_exceeded(self):
        code, text, suggestion = describe_failure(
            BudgetExceeded("candidate_tuples", 10, 12)
        )
        assert code == "budget-exhausted"
        assert "candidate_tuples" in text
        assert suggestion

    def test_injected_fault(self):
        code, text, _ = describe_failure(InjectedFault("evaluate"))
        assert code == "injected-fault"
        assert "evaluate" in text

    def test_xquery_error_keeps_legacy_code(self):
        code, text, _ = describe_failure(XQueryEvaluationError("boom"))
        assert code == "evaluation-failure"
        assert "boom" in text

    def test_unexpected_exception_is_internal(self):
        code, text, _ = describe_failure(ZeroDivisionError("oops"))
        assert code == "internal-error"
        assert "ZeroDivisionError" in text


class TestQueryResultSurface:
    def test_exact_success_has_no_error_class(self, movie_nalix):
        result = movie_nalix.ask("Return every movie.")
        assert result.ok
        assert result.error_class is None
        assert not result.retryable

    def test_rejected_query_is_not_retryable(self, movie_nalix):
        result = movie_nalix.ask("Return the isbn of every movie.")
        assert result.status == "rejected"
        assert result.error_class == ErrorClass.REJECTED
        assert not result.retryable
