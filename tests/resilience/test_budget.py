"""QueryBudget / BudgetMeter semantics and the ask() budget plumbing."""

import pytest

from repro.core.interface import NaLIX
from repro.resilience.budget import (
    QueryBudget,
    activate_budget,
    active_meter,
    charge,
    check_deadline,
)
from repro.resilience.errors import BudgetExceeded, ErrorClass


class TestQueryBudget:
    def test_default_budget_values(self):
        budget = QueryBudget.default()
        assert budget.deadline_seconds == QueryBudget.DEFAULT_DEADLINE_SECONDS
        assert (
            budget.max_candidate_tuples
            == QueryBudget.DEFAULT_MAX_CANDIDATE_TUPLES
        )
        assert (
            budget.max_materialized_nodes
            == QueryBudget.DEFAULT_MAX_MATERIALIZED_NODES
        )
        assert (
            budget.max_flwor_iterations
            == QueryBudget.DEFAULT_MAX_FLWOR_ITERATIONS
        )

    def test_default_with_custom_deadline(self):
        budget = QueryBudget.default(deadline_seconds=1.5)
        assert budget.deadline_seconds == 1.5
        assert budget.max_candidate_tuples is not None

    def test_unlimited_by_default(self):
        budget = QueryBudget()
        meter = budget.start()
        meter.charge("candidate_tuples", 10**9)
        meter.check_deadline()  # no deadline, never raises

    def test_to_dict_and_repr(self):
        budget = QueryBudget(deadline_seconds=2.0, max_candidate_tuples=10)
        assert budget.to_dict()["deadline_seconds"] == 2.0
        assert "max_candidate_tuples=10" in repr(budget)


class TestBudgetMeter:
    def test_charge_past_limit_raises(self):
        meter = QueryBudget(max_candidate_tuples=5).start()
        meter.charge("candidate_tuples", 5)
        with pytest.raises(BudgetExceeded) as info:
            meter.charge("candidate_tuples", 1)
        error = info.value
        assert error.resource == "candidate_tuples"
        assert error.limit == 5
        assert error.spent == 6
        assert error.error_class == ErrorClass.EXHAUSTED
        assert error.retryable

    def test_deadline_exceeded(self):
        meter = QueryBudget(deadline_seconds=0.0).start()
        with pytest.raises(BudgetExceeded) as info:
            meter.check_deadline()
        assert info.value.resource == "deadline"

    def test_implicit_deadline_check_in_charge(self):
        meter = QueryBudget(deadline_seconds=0.0).start()
        with pytest.raises(BudgetExceeded) as info:
            for _ in range(1000):  # > the implicit check interval
                meter.charge("flwor_iterations", 1)
        assert info.value.resource == "deadline"

    def test_snapshot_reports_spending(self):
        meter = QueryBudget().start()
        meter.charge("materialized_nodes", 7)
        snapshot = meter.snapshot()
        assert snapshot["materialized_nodes"] == 7
        assert snapshot["elapsed_seconds"] >= 0.0

    def test_expire_makes_the_next_check_raise(self):
        # The watchdog's cross-thread kill switch: once expired, both
        # cooperative check points raise EXHAUSTED.
        meter = QueryBudget.default(deadline_seconds=60.0).start()
        meter.charge("flwor_iterations")  # fine before expiry
        meter.expire("watchdog")
        assert meter.expired
        with pytest.raises(BudgetExceeded) as info:
            meter.charge("flwor_iterations")
        assert info.value.resource == "deadline"
        assert info.value.error_class == ErrorClass.EXHAUSTED
        with pytest.raises(BudgetExceeded):
            meter.check_deadline()

    def test_expire_is_idempotent_and_keeps_the_first_reason(self):
        meter = QueryBudget().start()
        meter.expire("watchdog")
        meter.expire("other")
        assert meter.snapshot()["expired"] == "watchdog"

    def test_unexpired_meter_has_no_expired_snapshot_key(self):
        meter = QueryBudget().start()
        assert not meter.expired
        assert "expired" not in meter.snapshot()


class TestScaled:
    def test_scaled_tightens_every_cap(self):
        budget = QueryBudget(deadline_seconds=4.0, max_candidate_tuples=100,
                             max_materialized_nodes=200,
                             max_flwor_iterations=400)
        tightened = budget.scaled(0.25)
        assert tightened.deadline_seconds == pytest.approx(1.0)
        assert tightened.max_candidate_tuples == 25
        assert tightened.max_materialized_nodes == 50
        assert tightened.max_flwor_iterations == 100

    def test_scaled_keeps_unlimited_unlimited(self):
        tightened = QueryBudget(deadline_seconds=4.0).scaled(0.5)
        assert tightened.max_candidate_tuples is None

    def test_scaled_count_caps_floor_at_one(self):
        tightened = QueryBudget(max_candidate_tuples=2).scaled(0.1)
        assert tightened.max_candidate_tuples == 1

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            QueryBudget().scaled(0.0)


class TestContextPlumbing:
    def test_helpers_are_noops_without_meter(self):
        assert active_meter() is None
        charge("candidate_tuples", 10**9)  # no active meter: no-op
        check_deadline()

    def test_activation_restores_previous_state(self):
        meter = QueryBudget().start()
        with activate_budget(meter):
            assert active_meter() is meter
            charge("flwor_iterations", 3)
        assert active_meter() is None
        assert meter.spent["flwor_iterations"] == 3


class TestAskBudget:
    def test_timeout_builds_default_budget(self, movie_database):
        nalix = NaLIX(movie_database)
        result = nalix.ask("Return every movie.", timeout=30.0)
        assert result.ok
        assert result.budget.deadline_seconds == 30.0
        assert (
            result.budget.max_candidate_tuples
            == QueryBudget.DEFAULT_MAX_CANDIDATE_TUPLES
        )

    def test_zero_timeout_exhausts(self, movie_database):
        nalix = NaLIX(movie_database)
        result = nalix.ask("Return every movie.", timeout=0.0)
        assert not result.ok
        assert result.status == "failed"
        assert result.error_class == ErrorClass.EXHAUSTED
        assert result.retryable
        assert any(m.code == "budget-exhausted" for m in result.errors)

    def test_explicit_budget_wins_over_timeout(self, movie_database):
        nalix = NaLIX(movie_database)
        budget = QueryBudget(deadline_seconds=60.0)
        result = nalix.ask(
            "Return every movie.", budget=budget, timeout=0.0
        )
        assert result.ok
        assert result.budget is budget

    def test_interface_default_budget(self, movie_database):
        nalix = NaLIX(movie_database, budget=QueryBudget(deadline_seconds=0.0))
        result = nalix.ask("Return every movie.")
        assert result.error_class == ErrorClass.EXHAUSTED

    def test_budget_spending_on_root_span(self, movie_database):
        nalix = NaLIX(movie_database)
        result = nalix.ask("Return every movie.", timeout=30.0)
        (root,) = result.trace.roots
        assert "budget.elapsed_seconds" in root.attributes
        assert root.attributes["budget.materialized_nodes"] > 0

    def test_no_budget_by_default(self, movie_nalix):
        result = movie_nalix.ask("Return every movie.")
        assert result.ok
        assert result.budget is None
