"""The graceful-degradation ladder, including the MQF blowup scenario."""

import pytest

from repro.core.interface import NaLIX
from repro.database.store import Database
from repro.obs.audit import AuditLog, read_audit_log
from repro.obs.metrics import METRICS
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import ErrorClass
from repro.xquery.errors import XQueryEvaluationError


@pytest.fixture(scope="module")
def wide_movie_database():
    """A synthetic document whose title/movie extents drive ``mqf_join``
    into many candidate tuples — the adversarial-phrasing blowup."""
    movies = "".join(
        f"<movie><title>Movie {i}</title><year>{1980 + i}</year></movie>"
        for i in range(60)
    )
    database = Database()
    database.load_text(f"<collection>{movies}</collection>", name="movie.xml")
    return database


#: Caps chosen so the planned path trips on candidate tuples and the
#: naive retry trips on iterations, forcing the keyword rung.
TIGHT_BUDGET = QueryBudget(
    deadline_seconds=5.0,
    max_candidate_tuples=10,
    max_flwor_iterations=10,
)


class TestMqfBlowup:
    def test_blowup_degrades_to_keyword_search_within_deadline(
        self, wide_movie_database
    ):
        nalix = NaLIX(wide_movie_database)
        result = nalix.ask(
            "Return the title of every movie.", budget=TIGHT_BUDGET
        )
        assert result.ok
        assert result.status == "degraded"
        assert result.error_class == ErrorClass.DEGRADED
        assert result.retryable
        # Both FLWOR hops were exhausted before the keyword rung served.
        assert result.degradation_path == ["naive-flwor", "keyword-search"]
        assert result.items  # a visibly-degraded answer, not an error
        assert result.total_seconds < TIGHT_BUDGET.deadline_seconds
        (warning,) = [
            m for m in result.warnings if m.code == "degraded-answer"
        ]
        assert "budget-exhausted" in warning.text

    def test_blowup_without_degradation_is_exhausted(
        self, wide_movie_database
    ):
        nalix = NaLIX(wide_movie_database, degrade=False)
        result = nalix.ask(
            "Return the title of every movie.", budget=TIGHT_BUDGET
        )
        assert result.status == "failed"
        assert result.error_class == ErrorClass.EXHAUSTED
        assert result.retryable
        assert any(m.code == "budget-exhausted" for m in result.errors)

    def test_blowup_is_audited_with_degradation_path(
        self, wide_movie_database, tmp_path
    ):
        audit_path = tmp_path / "audit.jsonl"
        nalix = NaLIX(
            wide_movie_database, audit_log=AuditLog(str(audit_path))
        )
        nalix.ask("Return the title of every movie.", budget=TIGHT_BUDGET)
        nalix.audit_log.close()
        (entry,) = read_audit_log(str(audit_path))
        assert entry["status"] == "degraded"
        assert entry["error_class"] == "degraded"
        assert entry["retryable"] is True
        assert entry["degradation_path"] == ["naive-flwor", "keyword-search"]
        assert "evaluate-keyword" in entry["stage_seconds"]


class TestDegradationLadder:
    def test_planner_failure_falls_back_to_naive(
        self, movie_database, monkeypatch
    ):
        nalix = NaLIX(movie_database)

        def explode(expr):
            raise XQueryEvaluationError("planned path down")

        monkeypatch.setattr(nalix.evaluator, "run", explode)
        before = METRICS.counter("resilience.degraded.naive-flwor").value
        result = nalix.ask("Return the title of every movie.")
        assert result.status == "degraded"
        assert result.degradation_path == ["naive-flwor"]
        # The naive hop computes the exact same answer set here.
        assert sorted(result.values()) == sorted(
            NaLIX(movie_database).ask(
                "Return the title of every movie."
            ).values()
        )
        assert (
            METRICS.counter("resilience.degraded.naive-flwor").value
            == before + 1
        )

    def test_naive_evaluator_skips_redundant_naive_hop(
        self, movie_database, monkeypatch
    ):
        nalix = NaLIX(movie_database, use_planner=False)

        def explode(expr):
            raise XQueryEvaluationError("naive path down")

        monkeypatch.setattr(nalix.evaluator, "run", explode)
        result = nalix.ask("Return the title of every movie.")
        assert result.status == "degraded"
        assert result.degradation_path == ["keyword-search"]

    def test_degraded_status_counter(self, movie_database, monkeypatch):
        nalix = NaLIX(movie_database)

        def explode(expr):
            raise XQueryEvaluationError("down")

        monkeypatch.setattr(nalix.evaluator, "run", explode)
        before = METRICS.counter("pipeline.status.degraded").value
        nalix.ask("Return every movie.")
        assert (
            METRICS.counter("pipeline.status.degraded").value == before + 1
        )

    def test_keyword_rung_uses_name_and_value_tokens(
        self, movie_database, monkeypatch
    ):
        nalix = NaLIX(movie_database)

        def explode(expr):
            raise XQueryEvaluationError("down")

        monkeypatch.setattr(nalix.evaluator, "run", explode)
        monkeypatch.setattr(nalix.naive_evaluator, "run", explode)
        result = nalix.ask(
            'Return the title of every movie directed by "Ron Howard".'
        )
        assert result.status == "degraded"
        assert result.degradation_path[-1] == "keyword-search"
        keyword_span = result.trace.find("evaluate-keyword")
        assert keyword_span is not None
        assert keyword_span.attributes["terms"] >= 3  # title, movie, value
        assert result.items

    def test_exhausted_ladder_reports_primary_failure(
        self, movie_database, monkeypatch
    ):
        nalix = NaLIX(movie_database)

        def explode(*args, **kwargs):
            raise XQueryEvaluationError("everything down")

        monkeypatch.setattr(nalix.evaluator, "run", explode)
        monkeypatch.setattr(nalix.naive_evaluator, "run", explode)
        monkeypatch.setattr(nalix.keyword_engine, "search", explode)
        before = METRICS.counter("resilience.degraded.exhausted").value
        result = nalix.ask("Return every movie.")
        assert result.status == "failed"
        assert result.error_class == ErrorClass.INTERNAL
        assert any(m.code == "evaluation-failure" for m in result.errors)
        assert (
            METRICS.counter("resilience.degraded.exhausted").value
            == before + 1
        )
