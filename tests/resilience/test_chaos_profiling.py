"""Chaos suite: profiling and memory accounting under injected faults.

The profiler's sampler thread and the memory tracker's tracemalloc
refcount both straddle the query's exception paths; this suite proves a
fault at any pipeline stage still yields a classified result with a
stopped sampler, closed spans, finalized memory totals, and restored
process-global state (thread switch interval, tracemalloc).
"""

import sys
import threading
import tracemalloc

import pytest

from repro.core.interface import NaLIX
from repro.resilience.errors import ErrorClass
from repro.resilience.faults import FAULT_STAGES, FaultPlan, FaultSpec

pytestmark = pytest.mark.chaos

SENTENCE = "Return the title of every movie."


class TestProfiledChaos:
    @pytest.mark.parametrize("stage", FAULT_STAGES)
    def test_fault_with_profiling_and_memory(self, stage, movie_database):
        switch_before = sys.getswitchinterval()
        tracing_before = tracemalloc.is_tracing()
        nalix = NaLIX(
            movie_database, fault_plan=FaultPlan([FaultSpec(stage)])
        )
        result = nalix.ask(SENTENCE, profile=True, memory=True)

        # Still a classified outcome, never an unhandled crash.  The
        # static-analysis gate fails open: a fault there serves the
        # query unchecked instead of failing it.
        if stage == "analyze":
            assert result.status == "ok"
            assert any(
                message.code == "analysis-unavailable"
                for message in result.warnings
            )
        else:
            assert result.status in ("degraded", "failed")
            assert result.error_class in (
                ErrorClass.DEGRADED, ErrorClass.INTERNAL
            )

        # The sampler is stopped, its thread joined, and the thread
        # switch interval restored — even though the stage raised.
        profiler = result.profile
        assert profiler is not None
        assert not profiler.running
        assert sys.getswitchinterval() == switch_before
        assert not any(
            thread.name == "repro-profiler" and thread.is_alive()
            for thread in threading.enumerate()
        )

        # The memory account is finalized and tracemalloc released.
        memory = result.memory
        assert memory is not None
        assert memory.alloc_bytes is not None
        assert memory.peak_rss_bytes > 0
        assert tracemalloc.is_tracing() == tracing_before

        # The span tree is complete: nothing left open for the sampler
        # or the stage measurements to dangle on.
        spans = list(result.trace.iter_spans())
        assert spans
        assert all(span.ended_at is not None for span in spans)

    def test_degraded_query_attributes_fallback_stage(self, movie_database):
        """A degraded query's memory account covers the fallback stage."""
        nalix = NaLIX(
            movie_database, fault_plan=FaultPlan([FaultSpec("evaluate")])
        )
        result = nalix.ask(SENTENCE, memory=True)
        assert result.status == "degraded"
        assert "evaluate-naive" in result.memory.stages

    def test_repeated_profiled_faults_leak_no_threads(self, movie_database):
        thread_count = threading.active_count()
        nalix = NaLIX(
            movie_database,
            fault_plan=FaultPlan([FaultSpec("evaluate", probability=0.5,
                                            seed=11)]),
        )
        for _ in range(10):
            nalix.ask(SENTENCE, profile=True, memory=True)
        assert threading.active_count() <= thread_count + 1
