"""Unit tests for the thesaurus (WordNet substitute)."""

from repro.ontology.thesaurus import Thesaurus, default_thesaurus


class TestSynsets:
    def test_symmetry(self):
        thesaurus = Thesaurus([{"movie", "film"}])
        assert thesaurus.are_synonyms("movie", "film")
        assert thesaurus.are_synonyms("film", "movie")

    def test_word_is_own_synonym(self):
        thesaurus = Thesaurus([])
        assert thesaurus.are_synonyms("book", "book")
        assert thesaurus.synonyms("book") == {"book"}

    def test_case_insensitive(self):
        thesaurus = Thesaurus([{"Movie", "FILM"}])
        assert thesaurus.are_synonyms("movie", "film")

    def test_overlapping_synsets_merge(self):
        thesaurus = Thesaurus([{"a", "b"}, {"b", "c"}])
        assert thesaurus.are_synonyms("a", "c")

    def test_add_synset_after_construction(self):
        thesaurus = Thesaurus([])
        thesaurus.add_synset({"cpu", "processor"})
        assert thesaurus.are_synonyms("cpu", "processor")

    def test_non_synonyms(self):
        thesaurus = default_thesaurus()
        assert not thesaurus.are_synonyms("movie", "book")


class TestDefaultThesaurus:
    def test_paper_domains_covered(self):
        thesaurus = default_thesaurus()
        assert thesaurus.are_synonyms("movie", "film")
        assert thesaurus.are_synonyms("author", "writer")
        assert thesaurus.are_synonyms("price", "cost")
        assert thesaurus.are_synonyms("year", "date")

    def test_words_listing(self):
        thesaurus = default_thesaurus()
        assert "movie" in thesaurus.words()
