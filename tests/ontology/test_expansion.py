"""Unit tests for term expansion against a database vocabulary."""

import pytest

from repro.database.store import Database
from repro.ontology.expansion import TermExpander
from repro.ontology.thesaurus import Thesaurus


@pytest.fixture()
def expander():
    database = Database()
    database.load_text(
        '<bib><book year="1994"><booktitle>X</booktitle>'
        "<author>A</author><price>9.99</price></book></bib>",
        name="bib",
    )
    return TermExpander(database)


class TestExpansion:
    def test_exact_match(self, expander):
        assert expander.expand("book") == ["book"]

    def test_plural_matches_singular_tag(self, expander):
        assert expander.expand("books") == ["book"]

    def test_attribute_match(self, expander):
        assert expander.expand("year") == ["@year"]

    def test_synonym_match(self, expander):
        assert expander.expand("cost") == ["price"]
        assert expander.expand("writer") == ["author"]

    def test_compound_match(self, expander):
        # "title" is not a tag, but "booktitle" contains it.
        assert expander.expand("title") == ["booktitle"]

    def test_no_match(self, expander):
        assert expander.expand("zebra") == []
        assert not expander.has_match("zebra")

    def test_empty_word(self, expander):
        assert expander.expand("  ") == []

    def test_exact_beats_synonym(self):
        database = Database()
        database.load_text("<a><price>1</price><cost>2</cost></a>", name="d")
        expander = TermExpander(database)
        assert expander.expand("price") == ["price"]

    def test_custom_thesaurus(self):
        database = Database()
        database.load_text("<a><flick>1</flick></a>", name="d")
        expander = TermExpander(
            database, thesaurus=Thesaurus([{"movie", "flick"}])
        )
        assert expander.expand("movie") == ["flick"]


class TestValueTags:
    def test_value_tags(self, expander):
        assert expander.value_tags("1994") == ["@year"]
        assert expander.value_tags("A") == ["author"]

    def test_value_tags_missing(self, expander):
        assert expander.value_tags("nothing here") == []
