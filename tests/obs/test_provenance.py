"""Provenance carriers and the word -> token -> clause lineage.

The golden-file tests pin the full ``explain`` report (timings off) for
three paper examples: the Fig. 2 movie query (Fig. 6 nesting-scope
provenance), a rejected query (validator-production provenance), and
the Fig. 5 marker-semantics aggregate.  Regenerate a golden file by
running the same sentence through ``explain(...).render_text(
timings=False)`` and reviewing the diff.
"""

import pathlib

from repro.core.interface import NaLIX
from repro.obs.explain import explain
from repro.obs.provenance import (
    ClauseRecord,
    QueryProvenance,
    TokenRecord,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

FIGURE2_QUERY = (
    "Return every director, where the number of movies directed by the "
    "director is the same as the number of movies directed by Ron Howard."
)


def _assert_matches_golden(rendered, name):
    expected = (GOLDEN_DIR / name).read_text(encoding="utf-8")
    assert rendered + "\n" == expected, (
        f"explain output drifted from golden file {name}; if the change "
        "is intentional, regenerate the golden file and review the diff"
    )


class TestGoldenLineage:
    def test_figure2_movie_query(self, movie_nalix):
        result = movie_nalix.ask(FIGURE2_QUERY)
        assert result.status == "ok"
        _assert_matches_golden(
            explain(result).render_text(timings=False),
            "figure2_movie_query.txt",
        )

    def test_rejected_query_cites_productions(self, movie_nalix):
        result = movie_nalix.ask("Return the isbn of every movie.")
        assert result.status == "rejected"
        _assert_matches_golden(
            explain(result).render_text(timings=False),
            "rejected_unknown_term.txt",
        )

    def test_figure5_marker_aggregate(self, bib_database):
        nalix = NaLIX(bib_database)
        result = nalix.ask(
            "Return the title of the book with the lowest price."
        )
        assert result.status == "ok"
        _assert_matches_golden(
            explain(result).render_text(timings=False),
            "figure5_lowest_price.txt",
        )


class TestClauseCitations:
    def test_every_clause_cites_a_source_token(self, movie_nalix):
        """The acceptance criterion: no emitted clause is orphaned."""
        result = movie_nalix.ask(FIGURE2_QUERY)
        assert result.ok
        provenance = result.provenance
        assert provenance.clauses, "translation produced no clause records"
        assert provenance.uncited_clauses() == []
        clause_kinds = {clause.clause for clause in provenance.clauses}
        assert {"for", "let", "where", "return"} <= clause_kinds

    def test_token_records_cover_all_words(self, movie_nalix):
        result = movie_nalix.ask(FIGURE2_QUERY)
        tokens = result.provenance.tokens
        words = [token.word for token in tokens]
        assert "Return" in words
        assert "Ron Howard" in words
        implicit = [token for token in tokens if token.implicit]
        assert len(implicit) == 1
        assert implicit[0].rule.startswith("Def. 11")

    def test_classification_rules_recorded(self, movie_nalix):
        result = movie_nalix.ask("Return the title of every movie.")
        by_type = {
            token.token_type: token.rule for token in result.provenance.tokens
        }
        assert by_type["CMT"].startswith("Table 1")
        assert by_type["NT"].startswith("Table 1")
        assert by_type["CM"].startswith("Table 2")

    def test_lineage_rows_pair_tokens_with_clauses(self, movie_nalix):
        result = movie_nalix.ask("Return the title of every movie.")
        lineage = dict(
            (token.word, clauses)
            for token, clauses in result.provenance.lineage()
        )
        # The returned NT is cited by for/where/return clauses ...
        assert len(lineage["title"]) >= 2
        # ... while pure markers map to no clause.
        assert lineage["of"] == []

    def test_validation_records_on_rejection(self, movie_nalix):
        result = movie_nalix.ask("Return the isbn of every movie.")
        records = result.provenance.validations
        assert any(record.kind == "error" for record in records)
        assert all(record.production for record in records)

    def test_provenance_summary_for_audit(self, movie_nalix):
        result = movie_nalix.ask("Return the title of every movie.")
        summary = result.provenance.summary()
        assert summary["tokens"]["NT"] == 2
        assert summary["clauses"] == len(result.provenance.clauses)
        assert any("Fig. 4" in pattern for pattern in summary["patterns"])

    def test_empty_provenance_summary_is_empty(self):
        assert QueryProvenance("x").summary() == {}


class TestRecordUnits:
    def test_clause_record_round_trip(self):
        record = ClauseRecord("where", "$v1 = 3", "Fig. 4", [2, 5],
                              ["year", "3"])
        entry = record.to_dict()
        assert entry["clause"] == "where"
        assert entry["token_ids"] == [2, 5]

    def test_token_record_detail_optional(self):
        record = TokenRecord(1, "Return", "return", "CMT", "Table 1")
        assert "detail" not in record.to_dict()
