"""Tests for the perf-regression watchdog."""

import json

import pytest

from repro.obs.regression import (
    FAIL,
    PASS,
    SKIP,
    WARN,
    Finding,
    Tolerance,
    apply_handicaps,
    compare_results,
    load_results,
    parse_handicap,
)


def make_results(mean=0.010, p95=0.012, runs=5, stages=None, jitter=0.0):
    """A minimal two-task BENCH_RESULTS-schema dict."""
    stages = stages or {"parse": 0.001, "evaluate": 0.008}
    tasks = {}
    for task_id in ("Q1", "Q2"):
        samples = [mean + jitter * (i - runs // 2) for i in range(runs)]
        tasks[task_id] = {
            "sentence": f"sentence for {task_id}",
            "status": "ok",
            "runs": runs,
            "mean_seconds": mean,
            "p95_seconds": p95,
            "samples_seconds": samples,
            "stage_mean_seconds": dict(stages),
            "stage_samples_seconds": {
                stage: [value + jitter * (i - runs // 2)
                        for i in range(runs)]
                for stage, value in stages.items()
            },
        }
    return {"repeats": runs, "tasks": tasks}


class TestTolerance:
    def test_defaults(self):
        tolerance = Tolerance()
        assert tolerance.rel_warn == 0.25
        assert tolerance.rel_fail == 1.0

    def test_fail_below_warn_rejected(self):
        with pytest.raises(ValueError):
            Tolerance(rel_warn=0.5, rel_fail=0.1)

    def test_repr_readable(self):
        assert "warn=+25%" in repr(Tolerance())


class TestCompareResults:
    def test_identical_results_pass(self):
        results = make_results()
        report = compare_results(results, results)
        assert report.ok
        assert report.exit_code == 0
        assert not report.failures
        assert all(f.verdict in (PASS, SKIP) for f in report.findings)

    def test_gross_regression_fails(self):
        baseline = make_results(mean=0.010, p95=0.012)
        current = make_results(mean=0.030, p95=0.036,
                               stages={"parse": 0.001, "evaluate": 0.026})
        report = compare_results(baseline, current)
        assert not report.ok
        assert report.exit_code == 1
        failed_metrics = {f.metric for f in report.failures}
        assert "mean_seconds" in failed_metrics
        assert "stage:evaluate" in failed_metrics

    def test_mild_drift_warns_not_fails(self):
        baseline = make_results(mean=0.010, p95=0.012,
                                stages={"evaluate": 0.009})
        current = make_results(mean=0.014, p95=0.0168,
                               stages={"evaluate": 0.0126})
        report = compare_results(baseline, current)
        assert report.ok  # warnings do not gate
        assert report.warnings

    def test_mad_guard_widens_noisy_tolerance(self):
        baseline = make_results(mean=0.010)
        # +50% mean would normally warn, but the current run's own
        # samples scatter by ±4 ms — the MAD guard absorbs the drift.
        noisy = make_results(mean=0.015, p95=0.018, jitter=0.004)
        quiet = make_results(mean=0.015, p95=0.018, jitter=0.0)
        assert not compare_results(baseline, noisy).warnings
        assert compare_results(baseline, quiet).warnings

    def test_min_sample_floor_skips(self):
        baseline = make_results()
        current = make_results(mean=0.9, runs=2)
        report = compare_results(baseline, current,
                                 Tolerance(min_samples=3))
        assert report.ok
        assert all(f.verdict == SKIP for f in report.findings)

    def test_missing_task_reported_as_skip(self):
        baseline = make_results()
        current = make_results()
        del current["tasks"]["Q2"]
        report = compare_results(baseline, current)
        skips = report.by_verdict(SKIP)
        assert any(f.task == "Q2" and "missing" in f.note for f in skips)

    def test_microsecond_stages_pass_under_abs_floor(self):
        baseline = make_results(stages={"classify": 0.00001})
        current = make_results(stages={"classify": 0.00005})  # "5x slower"
        report = compare_results(baseline, current)
        classify = [f for f in report.findings
                    if f.metric == "stage:classify"]
        assert classify
        assert all(f.verdict == PASS for f in classify)


class TestReport:
    def _failing_report(self):
        baseline = make_results()
        current = apply_handicaps(baseline, {"evaluate": 4.0})
        return compare_results(baseline, current)

    def test_render_text_shows_failures_and_result(self):
        text = self._failing_report().render_text()
        assert "RESULT: FAIL (perf regression)" in text
        assert "[fail]" in text
        assert "fail=" in text

    def test_render_text_verbose_lists_passes(self):
        report = self._failing_report()
        assert len(report.render_text(verbose=True).splitlines()) > \
            len(report.render_text().splitlines())

    def test_json_round_trip(self):
        report = self._failing_report()
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["counts"][FAIL] > 0
        assert payload["findings"]
        assert payload["tolerance"]["rel_fail"] == 1.0

    def test_github_annotations(self):
        lines = self._failing_report().github_annotations()
        assert lines
        assert all(line.startswith(("::warning", "::error"))
                   for line in lines)

    def test_finding_describe(self):
        finding = Finding("Q1", "mean_seconds", 0.0138, 0.0280, FAIL)
        text = finding.describe()
        assert "Q1 mean_seconds" in text
        assert "2.03x" in text
        assert "[fail]" in text


class TestHandicaps:
    def test_parse_handicap(self):
        assert parse_handicap("evaluate=3") == ("evaluate", 3.0)
        assert parse_handicap("parse=1.5") == ("parse", 1.5)

    @pytest.mark.parametrize("spec", ["evaluate", "=3", "evaluate=x",
                                      "evaluate=0", "evaluate=-1"])
    def test_parse_handicap_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_handicap(spec)

    def test_apply_handicaps_slows_stage_and_totals(self):
        results = make_results()
        slowed = apply_handicaps(results, {"evaluate": 3.0})
        original = results["tasks"]["Q1"]
        task = slowed["tasks"]["Q1"]
        assert task["stage_mean_seconds"]["evaluate"] == pytest.approx(
            3.0 * original["stage_mean_seconds"]["evaluate"]
        )
        extra = 2.0 * original["stage_mean_seconds"]["evaluate"]
        assert task["mean_seconds"] == pytest.approx(
            original["mean_seconds"] + extra
        )
        assert task["samples_seconds"][0] == pytest.approx(
            original["samples_seconds"][0] + extra
        )

    def test_apply_handicaps_does_not_mutate_input(self):
        results = make_results()
        before = json.dumps(results, sort_keys=True)
        apply_handicaps(results, {"evaluate": 3.0})
        assert json.dumps(results, sort_keys=True) == before

    def test_unknown_stage_is_a_noop(self):
        results = make_results()
        slowed = apply_handicaps(results, {"nope": 9.0})
        assert json.dumps(slowed, sort_keys=True) == \
            json.dumps(results, sort_keys=True)

    def test_handicapped_run_fails_the_gate(self):
        baseline = make_results()
        slowed = apply_handicaps(baseline, {"evaluate": 3.0})
        report = compare_results(baseline, slowed)
        assert report.exit_code == 1


class TestLoadResults:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        results = make_results()
        path.write_text(json.dumps(results), encoding="utf-8")
        assert load_results(str(path)) == results

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_results(str(tmp_path / "nope.json"))


def make_chaos(availability=1.0, unclassified=0, stuck=5, expired=2,
               p50=0.02, p99=0.8, qps=20.0, samples=24):
    """A minimal ``serving_chaos`` section."""
    return {
        "availability": availability,
        "unclassified_5xx": unclassified,
        "watchdog": {"stuck": stuck, "expired": expired, "recovered": 3},
        "p50_seconds": p50,
        "p99_seconds": p99,
        "qps": qps,
        "samples_seconds": [p50] * samples,
    }


class TestServingChaosGate:
    def compare(self, base_chaos, cur_chaos):
        baseline = dict(make_results(), serving_chaos=base_chaos)
        current = dict(make_results(), serving_chaos=cur_chaos)
        return compare_results(baseline, current)

    def chaos_findings(self, report):
        return [f for f in report.findings if f.task == "serving_chaos"]

    def test_identical_chaos_sections_pass(self):
        report = self.compare(make_chaos(), make_chaos())
        assert report.ok
        assert not [f for f in self.chaos_findings(report)
                    if f.verdict in (WARN, FAIL)]

    def test_availability_below_the_floor_fails(self):
        report = self.compare(make_chaos(), make_chaos(availability=0.97))
        (finding,) = [f for f in self.chaos_findings(report)
                      if f.metric == "availability"]
        assert finding.verdict == FAIL
        assert "floor" in finding.note

    def test_availability_floor_is_absolute_not_relative(self):
        # Even a baseline that was itself low cannot excuse 97%.
        report = self.compare(make_chaos(availability=0.97),
                              make_chaos(availability=0.97))
        assert not report.ok

    def test_unclassified_5xx_fails(self):
        report = self.compare(make_chaos(), make_chaos(unclassified=2))
        (finding,) = [f for f in self.chaos_findings(report)
                      if f.metric == "unclassified_5xx"]
        assert finding.verdict == FAIL

    def test_watchdog_never_firing_warns_but_does_not_fail(self):
        report = self.compare(make_chaos(),
                              make_chaos(stuck=0, expired=0))
        (finding,) = [f for f in self.chaos_findings(report)
                      if f.metric == "watchdog_stuck"]
        assert finding.verdict == WARN
        assert report.ok

    def test_expired_only_still_counts_as_watchdog_activity(self):
        report = self.compare(make_chaos(), make_chaos(stuck=0, expired=4))
        assert not [f for f in self.chaos_findings(report)
                    if f.metric == "watchdog_stuck"]

    def test_p99_regression_fails(self):
        report = self.compare(make_chaos(p99=0.5), make_chaos(p99=2.0))
        (finding,) = [f for f in self.chaos_findings(report)
                      if f.metric == "p99_seconds"]
        assert finding.verdict == FAIL

    def test_throughput_collapse_fails(self):
        report = self.compare(make_chaos(qps=20.0), make_chaos(qps=5.0))
        (finding,) = [f for f in self.chaos_findings(report)
                      if f.metric == "seconds_per_request"]
        assert finding.verdict == FAIL

    def test_missing_current_section_skips_never_passes_silently(self):
        baseline = dict(make_results(), serving_chaos=make_chaos())
        report = compare_results(baseline, make_results())
        (finding,) = self.chaos_findings(report)
        assert finding.verdict == SKIP

    def test_no_baseline_section_adds_no_rows(self):
        report = compare_results(make_results(),
                                 dict(make_results(),
                                      serving_chaos=make_chaos()))
        assert not self.chaos_findings(report)

    def test_too_few_samples_skips_the_latency_ratchet(self):
        report = self.compare(make_chaos(), make_chaos(samples=2, p99=99.0))
        verdicts = {f.metric: f.verdict for f in self.chaos_findings(report)}
        assert verdicts["p99_seconds"] == SKIP


class TestCommittedBaseline:
    def test_baseline_has_watchdog_schema(self):
        """The committed baseline must carry the fields the gate needs."""
        results = load_results("benchmarks/BENCH_RESULTS.json")
        assert len(results["tasks"]) == 9
        for task in results["tasks"].values():
            assert task["runs"] >= 3
            assert len(task["samples_seconds"]) == task["runs"]
            assert task["stage_mean_seconds"]
            assert set(task["stage_samples_seconds"]) == \
                set(task["stage_mean_seconds"])

    def test_baseline_compares_clean_against_itself(self):
        results = load_results("benchmarks/BENCH_RESULTS.json")
        report = compare_results(results, results)
        assert report.ok
        assert not report.warnings

    def test_baseline_has_a_healthy_chaos_section(self):
        """The committed chaos run must itself clear the gates."""
        chaos = load_results("benchmarks/BENCH_RESULTS.json")["serving_chaos"]
        assert chaos["availability"] >= 0.99
        assert chaos["unclassified_5xx"] == 0
        assert chaos["faults_injected"] > 0
        assert chaos["faults_delayed"] > 0
        assert chaos["watchdog"]["stuck"] > 0
        assert len(chaos["samples_seconds"]) == chaos["requests"]


def make_sampler(error=1.0, slow=1.0, healthy=0.08, head_rate=0.1,
                 seen=None):
    return {
        "head_rate": head_rate,
        "seen": seen or {"error": 40, "degraded": 5, "slow": 12,
                         "healthy": 500},
        "retention": {"error": error, "degraded": 1.0, "slow": slow,
                      "healthy": healthy},
    }


def make_obs(base_p50=0.010, base_p99=0.030, full_p50=0.011, full_p99=0.032,
             overhead=0.07, samples=24):
    return {
        "baseline": {"p50_seconds": base_p50, "p99_seconds": base_p99},
        "observability": {"p50_seconds": full_p50, "p99_seconds": full_p99},
        "p99_overhead_fraction": overhead,
        "samples_seconds": [full_p50] * samples,
    }


class TestChaosRetentionGate:
    def compare(self, cur_extra):
        chaos = dict(make_chaos(), **cur_extra)
        baseline = dict(make_results(), serving_chaos=make_chaos())
        current = dict(make_results(), serving_chaos=chaos)
        return compare_results(baseline, current)

    def verdicts(self, report):
        return {f.metric: f.verdict for f in report.findings
                if f.metric.startswith(("retention:", "recorder_bytes"))}

    def test_healthy_retention_profile_passes(self):
        report = self.compare({
            "sampler": make_sampler(),
            "recorder": {"bytes": 4096, "max_bytes": 8192, "count": 10},
        })
        verdicts = self.verdicts(report)
        assert set(verdicts) == {"retention:error", "retention:slow",
                                 "retention:healthy", "recorder_bytes"}
        assert all(v == PASS for v in verdicts.values())

    def test_dropped_error_trace_fails_absolutely(self):
        report = self.compare({"sampler": make_sampler(error=0.99)})
        assert self.verdicts(report)["retention:error"] == FAIL
        assert not report.ok

    def test_slow_tail_has_a_small_floor(self):
        passing = self.compare({"sampler": make_sampler(slow=0.96)})
        failing = self.compare({"sampler": make_sampler(slow=0.90)})
        assert self.verdicts(passing)["retention:slow"] == PASS
        assert self.verdicts(failing)["retention:slow"] == FAIL

    def test_healthy_oversampling_fails(self):
        # head_rate 0.1 + slack 0.05: 0.14 passes, 0.2 fails.
        passing = self.compare({"sampler": make_sampler(healthy=0.14)})
        failing = self.compare({"sampler": make_sampler(healthy=0.20)})
        assert self.verdicts(passing)["retention:healthy"] == PASS
        assert self.verdicts(failing)["retention:healthy"] == FAIL

    def test_ring_buffer_over_budget_fails(self):
        report = self.compare({
            "recorder": {"bytes": 9000, "max_bytes": 8192, "count": 10},
        })
        assert self.verdicts(report)["recorder_bytes"] == FAIL

    def test_unseen_categories_produce_no_rows(self):
        report = self.compare({
            "sampler": make_sampler(
                seen={"error": 0, "slow": 0, "healthy": 0}
            ),
        })
        assert self.verdicts(report) == {}

    def test_pre_observability_sections_gate_nothing(self):
        # A chaos section recorded before the sampler/recorder existed.
        report = self.compare({})
        assert self.verdicts(report) == {}


class TestObservabilityOverheadGate:
    def compare(self, base_obs, cur_obs):
        baseline = dict(make_results(), serving_observability=base_obs)
        current = (dict(make_results(), serving_observability=cur_obs)
                   if cur_obs is not None else make_results())
        return compare_results(baseline, current)

    def obs_findings(self, report):
        return {f.metric: f for f in report.findings
                if f.task == "serving_observability"}

    def test_noise_floor_overhead_passes(self):
        report = self.compare(make_obs(), make_obs())
        findings = self.obs_findings(report)
        assert findings["p99_overhead_fraction"].verdict == PASS
        assert findings["p99_seconds"].verdict == PASS
        assert report.ok

    def test_large_overhead_warns_but_never_fails(self):
        report = self.compare(make_obs(), make_obs(overhead=0.40))
        assert self.obs_findings(report)[
            "p99_overhead_fraction"].verdict == WARN
        assert report.ok  # warn-only: one noisy A/B run cannot block

    def test_absolute_latency_ratchet_still_fails(self):
        report = self.compare(make_obs(),
                              make_obs(full_p50=0.120, full_p99=0.300))
        assert self.obs_findings(report)["p50_seconds"].verdict == FAIL
        assert not report.ok

    def test_missing_current_section_skips(self):
        report = self.compare(make_obs(), None)
        assert self.obs_findings(report)[
            "p99_overhead_fraction"].verdict == SKIP

    def test_no_baseline_section_adds_no_rows(self):
        report = compare_results(
            make_results(),
            dict(make_results(), serving_observability=make_obs()),
        )
        assert not self.obs_findings(report)

    def test_too_few_samples_skip_the_ratchet(self):
        report = self.compare(make_obs(), make_obs(samples=2))
        assert self.obs_findings(report)["p99_seconds"].verdict == SKIP


def make_canary_section(base_p50=0.010, base_p99=0.030, full_p50=0.011,
                        full_p99=0.032, overhead=0.07, samples=24):
    return {
        "baseline": {"p50_seconds": base_p50, "p99_seconds": base_p99},
        "canary": {"p50_seconds": full_p50, "p99_seconds": full_p99},
        "p99_overhead_fraction": overhead,
        "samples_seconds": [full_p50] * samples,
    }


class TestCanaryOverheadGate:
    def compare(self, base_section, cur_section):
        baseline = dict(make_results(), serving_canary=base_section)
        current = (dict(make_results(), serving_canary=cur_section)
                   if cur_section is not None else make_results())
        return compare_results(baseline, current)

    def canary_findings(self, report):
        return {f.metric: f for f in report.findings
                if f.task == "serving_canary"}

    def test_noise_floor_overhead_passes(self):
        report = self.compare(make_canary_section(), make_canary_section())
        findings = self.canary_findings(report)
        assert findings["p99_overhead_fraction"].verdict == PASS
        assert findings["p99_seconds"].verdict == PASS
        assert report.ok

    def test_large_overhead_warns_but_never_fails(self):
        report = self.compare(make_canary_section(),
                              make_canary_section(overhead=0.40))
        assert self.canary_findings(report)[
            "p99_overhead_fraction"].verdict == WARN
        assert report.ok  # warn-only: the probe nags, never blocks

    def test_absolute_latency_ratchet_still_fails(self):
        report = self.compare(
            make_canary_section(),
            make_canary_section(full_p50=0.120, full_p99=0.300),
        )
        assert self.canary_findings(report)["p50_seconds"].verdict == FAIL
        assert not report.ok

    def test_missing_current_section_skips(self):
        report = self.compare(make_canary_section(), None)
        assert self.canary_findings(report)[
            "p99_overhead_fraction"].verdict == SKIP

    def test_no_baseline_section_adds_no_rows(self):
        report = compare_results(
            make_results(),
            dict(make_results(), serving_canary=make_canary_section()),
        )
        assert not self.canary_findings(report)

    def test_too_few_samples_skip_the_ratchet(self):
        report = self.compare(make_canary_section(),
                              make_canary_section(samples=2))
        assert self.canary_findings(report)["p99_seconds"].verdict == SKIP
