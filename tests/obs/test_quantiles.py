"""Tests for the shared nearest-rank / MAD helpers."""

import pytest

from repro.obs.quantiles import median, median_abs_deviation, nearest_rank


class TestNearestRank:
    def test_empty_returns_zero(self):
        assert nearest_rank([], 0.5) == 0.0

    def test_single_sample_is_every_percentile(self):
        for fraction in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert nearest_rank([7.0], fraction) == 7.0

    def test_does_not_sort_in_place(self):
        samples = [3.0, 1.0, 2.0]
        nearest_rank(samples, 0.5)
        assert samples == [3.0, 1.0, 2.0]

    def test_unsorted_input_handled(self):
        assert nearest_rank([4.0, 1.0, 3.0, 2.0], 0.5) == 2.0

    def test_exact_rank_boundary_small_sample(self):
        # ceil(0.5 * 4) = 2 -> the 2nd smallest, NOT the 3rd: the old
        # int(fraction * n) indexing read one element high whenever
        # fraction * n was integral.
        assert nearest_rank([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0

    def test_textbook_definition_on_1_to_100(self):
        samples = [float(value) for value in range(1, 101)]
        assert nearest_rank(samples, 0.50) == 50.0
        assert nearest_rank(samples, 0.95) == 95.0
        assert nearest_rank(samples, 0.99) == 99.0
        assert nearest_rank(samples, 1.00) == 100.0

    def test_non_integral_rank_rounds_up(self):
        # ceil(0.5 * 5) = 3 -> the true median of an odd-length list.
        assert nearest_rank([1.0, 2.0, 3.0, 4.0, 5.0], 0.5) == 3.0

    def test_zero_fraction_clamps_to_minimum(self):
        assert nearest_rank([5.0, 1.0, 3.0], 0.0) == 1.0


class TestMedian:
    def test_odd_length(self):
        assert median([5.0, 1.0, 3.0]) == 3.0

    def test_even_length_takes_lower(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.0

    def test_empty(self):
        assert median([]) == 0.0


class TestMedianAbsDeviation:
    def test_empty_and_single(self):
        assert median_abs_deviation([]) == 0.0
        assert median_abs_deviation([4.2]) == 0.0

    def test_constant_samples_have_zero_spread(self):
        assert median_abs_deviation([3.0, 3.0, 3.0]) == 0.0

    def test_known_value(self):
        # median = 3, |x - 3| = [2, 1, 0, 1, 2], MAD = 1.
        assert median_abs_deviation([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0

    def test_outlier_robustness(self):
        # One wild outlier barely moves the MAD (unlike the stddev).
        tight = median_abs_deviation([10.0, 11.0, 12.0, 13.0, 14.0])
        spiked = median_abs_deviation([10.0, 11.0, 12.0, 13.0, 1000.0])
        assert spiked <= 2 * tight + 1.0

    @pytest.mark.parametrize("samples", [[1.0, 2.0], [0.5, 1.5, 2.5, 9.0]])
    def test_non_negative(self, samples):
        assert median_abs_deviation(samples) >= 0.0
