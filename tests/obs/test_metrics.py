"""Unit tests for the metrics registry and its pipeline integration."""

import json
import threading

from repro.core.interface import NaLIX
from repro.obs.metrics import METRICS, MetricsRegistry


class TestRegistry:
    def test_counter_create_and_increment(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 4)
        assert registry.counter("a.b").value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 3)
        registry.set_gauge("g", 11)
        assert registry.gauge("g").value == 11

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 10.0):
            registry.observe("h", value)
        summary = registry.histogram("h").summary()
        assert summary["count"] == 4
        assert summary["mean"] == 4.0
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        # Nearest rank: p50 of four samples is the 2nd smallest.
        assert summary["p50"] == 2.0

    def test_histogram_exact_percentiles_and_total(self):
        registry = MetricsRegistry()
        for value in range(1, 101):  # 1..100
            registry.observe("h", float(value))
        summary = registry.histogram("h").summary()
        assert summary["total"] == 5050.0
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0

    def test_histogram_percentiles_small_sample(self):
        registry = MetricsRegistry()
        registry.observe("h", 7.0)
        summary = registry.histogram("h").summary()
        assert summary["p50"] == summary["p95"] == summary["p99"] == 7.0

    def test_histogram_sample_is_bounded(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(histogram.SAMPLE_LIMIT + 100):
            histogram.observe(float(value))
        assert histogram.count == histogram.SAMPLE_LIMIT + 100
        assert len(histogram._sample) == histogram.SAMPLE_LIMIT

    def test_snapshot_and_json_export(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 2)
        registry.observe("h", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 2}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert json.loads(registry.to_json()) == snapshot

    def test_reset_zeroes_in_place(self):
        """reset() keeps metric object identity so modules may hold
        references resolved at import time."""
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        histogram = registry.histogram("h")
        histogram.observe(4.0)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0
        assert registry.counter("c") is counter
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1


class TestThreadSafety:
    """Concurrency regression: lost updates under contended writers."""

    THREADS = 8
    ITERATIONS = 2000

    def _run_threads(self, target):
        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()
            target()

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        self._run_threads(lambda: [counter.inc()
                                   for _ in range(self.ITERATIONS)])
        assert counter.value == self.THREADS * self.ITERATIONS

    def test_histogram_observations_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        self._run_threads(lambda: [histogram.observe(1.0)
                                   for _ in range(self.ITERATIONS)])
        assert histogram.count == self.THREADS * self.ITERATIONS
        assert histogram.summary()["total"] == float(
            self.THREADS * self.ITERATIONS
        )

    def test_create_on_demand_yields_one_metric(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            seen.append(registry.counter("shared"))

        self._run_threads(create)
        assert len(set(map(id, seen))) == 1

    def test_snapshot_during_writes_is_consistent(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        snapshots = []

        def reader():
            while not stop.is_set():
                snapshots.append(registry.snapshot())

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for index in range(5000):
                registry.inc("writes")
                registry.observe("h", float(index))
        finally:
            stop.set()
            thread.join()
        assert registry.snapshot()["counters"]["writes"] == 5000
        for snapshot in snapshots:
            count = snapshot["counters"].get("writes", 0)
            assert 0 <= count <= 5000


class TestPipelineMetrics:
    def test_ask_counts_queries_and_stage_latencies(self, movie_nalix):
        before = METRICS.counter("pipeline.queries").value
        before_ok = METRICS.counter("pipeline.status.ok").value
        stage = METRICS.histogram("pipeline.stage.translate.seconds")
        stage_before = stage.count
        result = movie_nalix.ask("Return every movie.")
        assert result.ok
        assert METRICS.counter("pipeline.queries").value == before + 1
        assert METRICS.counter("pipeline.status.ok").value == before_ok + 1
        assert stage.count == stage_before + 1

    def test_validator_error_categories_counted(self, movie_nalix):
        unknown = METRICS.counter("validator.error.unknown-name")
        before = unknown.value
        rejected_before = METRICS.counter("pipeline.status.rejected").value
        result = movie_nalix.ask("Return the isbn of every movie.")
        assert not result.ok
        assert unknown.value == before + 1
        assert (
            METRICS.counter("pipeline.status.rejected").value
            == rejected_before + 1
        )

    def test_validator_warning_categories_counted(self, movie_nalix):
        pronoun = METRICS.counter("validator.warning.pronoun")
        before = pronoun.value
        result = movie_nalix.ask("Return every movie and their titles.")
        assert result.ok
        assert pronoun.value > before

    def test_implicit_nt_insertions_counted(self, movie_nalix):
        counter = METRICS.counter("validator.implicit_nt_inserted")
        before = counter.value
        result = movie_nalix.ask(
            'Return every movie directed by "Ron Howard".'
        )
        assert result.ok
        assert counter.value > before

    def test_let_cache_and_planner_metrics_move(self, dblp_nalix):
        planned = METRICS.counter("evaluator.flwor.planned")
        before = planned.value
        result = dblp_nalix.ask(
            "Return the number of books published by each publisher."
        )
        assert result.ok
        assert planned.value > before

    def test_index_lookups_counted(self, movie_database):
        lookups = METRICS.counter("database.index.tag_lookups")
        before = lookups.value
        movie_database.nodes_with_tag("movie")
        assert lookups.value == before + 1

    def test_database_gauges_set(self, movie_database):
        # The session fixture built at least this database already.
        assert METRICS.gauge("database.nodes").value > 0
        assert METRICS.gauge("database.documents").value >= 1

    def test_keyword_search_metrics(self, movie_database):
        from repro.keyword_search.engine import KeywordSearchEngine

        searches = METRICS.counter("keyword_search.queries")
        before = searches.value
        engine = KeywordSearchEngine(movie_database)
        engine.search("Ron Howard movie")
        assert searches.value == before + 1
        assert METRICS.gauge("keyword_search.index_nodes").value > 0

    def test_xmlstore_parse_metrics(self):
        from repro.xmlstore.parser import parse_document

        parsed = METRICS.counter("xmlstore.parse.documents")
        before = parsed.value
        document = parse_document("<a><b>x</b></a>")
        assert parsed.value == before + 1
        assert METRICS.gauge("xmlstore.parse.last_nodes").value == (
            document.node_count()
        )

    def test_new_nalix_failure_code_counters(self, movie_database):
        nalix = NaLIX(movie_database)
        counter = METRICS.counter("pipeline.error.parse-failure")
        before = counter.value
        result = nalix.ask("")
        assert result.status == "rejected"
        assert counter.value == before + 1
