"""Audit trail: JSONL round-trip, record content, hardened reading."""

import json

from repro.core.errors import TranslationError
from repro.core.interface import NaLIX
from repro.obs.audit import (
    AuditLog,
    ReadStats,
    audit_entry,
    iter_records,
    read_audit_log,
)


class TestAuditLog:
    def test_one_record_per_query_round_trip(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path), actor="tests") as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            nalix.ask("Return the title of every movie.")
            nalix.ask("Return the isbn of every movie.")
            nalix.ask("")
        entries = read_audit_log(str(path))
        assert len(entries) == 3
        assert [entry["status"] for entry in entries] == [
            "ok", "rejected", "rejected",
        ]
        assert all(entry["actor"] == "tests" for entry in entries)

    def test_ok_record_fields(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            nalix.ask("Return the title of every movie.")
        (entry,) = read_audit_log(str(path))
        assert entry["sentence"] == "Return the title of every movie."
        assert entry["status"] == "ok"
        assert entry["errors"] == []
        assert entry["xquery"].startswith("for $")
        assert entry["results"] > 0
        assert entry["timestamp"] > 0
        assert entry["total_seconds"] > 0
        stage_seconds = entry["stage_seconds"]
        for stage in ("parse", "validate", "translate", "evaluate"):
            assert stage_seconds[stage] > 0

    def test_rejected_record_carries_error_categories(
        self, movie_database, tmp_path
    ):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            nalix.ask("Return the isbn of every movie.")
        (entry,) = read_audit_log(str(path))
        assert entry["status"] == "rejected"
        assert "unknown-name" in entry["errors"]
        assert entry["xquery"] is None
        assert "translate" not in entry["stage_seconds"]

    def test_failed_record(self, movie_database, tmp_path, monkeypatch):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)

            def explode(tree):
                raise TranslationError("forced for the test")

            monkeypatch.setattr(nalix.translator, "translate", explode)
            nalix.ask("Return every movie.")
        (entry,) = read_audit_log(str(path))
        assert entry["status"] == "failed"
        assert entry["errors"] == ["translation-failure"]

    def test_records_append_across_log_instances(
        self, movie_database, tmp_path
    ):
        path = tmp_path / "audit.jsonl"
        for _ in range(2):
            with AuditLog(str(path)) as audit:
                NaLIX(movie_database, audit_log=audit).ask(
                    "Return every movie."
                )
        assert len(read_audit_log(str(path))) == 2

    def test_lines_are_single_json_objects(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            NaLIX(movie_database, audit_log=audit).ask("Return every movie.")
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 1
        assert isinstance(json.loads(lines[0]), dict)

    def test_audit_entry_without_trace(self, movie_database):
        result = NaLIX(movie_database).ask("Return every movie.")
        result.trace = None
        entry = audit_entry(result)
        assert entry["status"] == "ok"
        assert "stage_seconds" not in entry

    def test_entry_carries_answer_digest(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            result = nalix.ask("Return the title of every movie.")
        (entry,) = read_audit_log(str(path))
        assert entry["answer_digest"] == result.answer_digest
        assert len(entry["answer_digest"]) == 16

    def test_entry_carries_provenance_summary(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            nalix.ask("Return the title of every movie.")
            nalix.ask("")  # parse failure: nothing harvested
        ok_entry, failed_entry = read_audit_log(str(path))
        provenance = ok_entry["provenance"]
        assert provenance["tokens"]["NT"] == 2
        assert provenance["clauses"] > 0
        assert any("Fig. 4" in pattern for pattern in provenance["patterns"])
        assert "provenance" not in failed_entry


class TestRotation:
    def _fill(self, audit, nalix, queries):
        for _ in range(queries):
            nalix.ask("Return every movie.")

    def test_rotates_at_max_bytes(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path), max_bytes=2000) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            self._fill(audit, nalix, 8)
        rolled = tmp_path / "audit.jsonl.1"
        assert rolled.exists(), "rotation never happened"
        # Every line in both files is intact JSON: rotation only ever
        # happens between records, never mid-line.
        for part in (path, rolled):
            for line in part.read_text(encoding="utf-8").splitlines():
                json.loads(line)
        assert path.stat().st_size <= 2000
        assert rolled.stat().st_size <= 2000

    def test_rollover_replaces_previous_backup(self, movie_database,
                                               tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path), max_bytes=1200) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            self._fill(audit, nalix, 12)
        files = sorted(entry.name for entry in tmp_path.iterdir())
        assert files == ["audit.jsonl", "audit.jsonl.1"]

    def test_rotation_considers_preexisting_file(self, movie_database,
                                                 tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text("x" * 5000 + "\n", encoding="utf-8")
        with AuditLog(str(path), max_bytes=2000) as audit:
            NaLIX(movie_database, audit_log=audit).ask("Return every movie.")
        assert (tmp_path / "audit.jsonl.1").exists()
        entries = read_audit_log(str(path))
        assert len(entries) == 1

    def test_no_rotation_without_max_bytes(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            self._fill(audit, nalix, 8)
        assert not (tmp_path / "audit.jsonl.1").exists()
        assert len(read_audit_log(str(path))) == 8


class TestHardenedReader:
    def _write(self, path, lines, trailing_newline=True):
        text = "\n".join(lines)
        if trailing_newline:
            text += "\n"
        path.write_text(text, encoding="utf-8")

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        # A crash (or a live scrape racing a write) can lose at most
        # the in-flight line; the reader must keep everything before.
        path = tmp_path / "audit.jsonl"
        self._write(
            path,
            ['{"sentence": "a"}', '{"sentence": "b"}', '{"sentence": "c'],
            trailing_newline=False,
        )
        stats = ReadStats()
        records = list(iter_records(str(path), stats=stats))
        assert [r["sentence"] for r in records] == ["a", "b"]
        assert stats.truncated == 1
        assert stats.skipped == 0

    def test_corrupt_interior_row_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self._write(
            path,
            ['{"sentence": "a"}', "%%% not json %%%", '{"sentence": "b"}'],
        )
        stats = ReadStats()
        records = list(iter_records(str(path), stats=stats))
        assert [r["sentence"] for r in records] == ["a", "b"]
        assert stats.skipped == 1
        assert stats.truncated == 0

    def test_corrupt_final_line_with_newline_is_corruption(self, tmp_path):
        # A complete (newline-terminated) bad line is corruption, not
        # the tolerated partial write.
        path = tmp_path / "audit.jsonl"
        self._write(path, ['{"sentence": "a"}', "garbage"])
        stats = ReadStats()
        assert len(list(iter_records(str(path), stats=stats))) == 1
        assert stats.skipped == 1
        assert stats.truncated == 0

    def test_rotated_file_is_chained_in_write_order(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self._write(tmp_path / "audit.jsonl.1", ['{"sentence": "old"}'])
        self._write(path, ['{"sentence": "new"}'])
        stats = ReadStats()
        records = list(iter_records(str(path), stats=stats))
        assert [r["sentence"] for r in records] == ["old", "new"]
        assert stats.files == 2

    def test_rotation_chaining_is_opt_out(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self._write(tmp_path / "audit.jsonl.1", ['{"sentence": "old"}'])
        self._write(path, ['{"sentence": "new"}'])
        records = list(iter_records(str(path), rotated=False))
        assert [r["sentence"] for r in records] == ["new"]

    def test_read_audit_log_keeps_the_single_file_contract(self, tmp_path):
        # Historical callers read exactly the file they name.
        path = tmp_path / "audit.jsonl"
        self._write(tmp_path / "audit.jsonl.1", ['{"sentence": "old"}'])
        self._write(path, ['{"sentence": "new"}'])
        assert len(read_audit_log(str(path))) == 1
        assert len(read_audit_log(str(path), rotated=True)) == 2

    def test_truncation_in_rotated_file_counts_as_corruption(self, tmp_path):
        # Only the *final* file's final line may be a partial write —
        # a rotated file was closed long ago, so a bad tail there is
        # real corruption.
        path = tmp_path / "audit.jsonl"
        self._write(
            tmp_path / "audit.jsonl.1", ['{"sentence": "ol'],
            trailing_newline=False,
        )
        self._write(path, ['{"sentence": "new"}'])
        stats = ReadStats()
        records = list(iter_records(str(path), stats=stats))
        assert [r["sentence"] for r in records] == ["new"]
        assert stats.skipped == 1
        assert stats.truncated == 0


class TestMemoryColumns:
    def test_every_entry_has_peak_rss(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            nalix.ask("Return every movie.")
        (entry,) = read_audit_log(str(path))
        assert entry["peak_rss_bytes"] > 0
        # Allocation columns appear only for tracked queries.
        assert "alloc_bytes" not in entry

    def test_tracked_entries_carry_alloc_columns(
        self, movie_database, tmp_path
    ):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path)) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            nalix.ask("Return every movie.", memory=True)
            nalix.ask("Return every movie.")
        tracked, plain = read_audit_log(str(path))
        assert isinstance(tracked["alloc_bytes"], int)
        assert tracked["peak_alloc_bytes"] >= 0
        assert "alloc_bytes" not in plain
        assert plain["peak_rss_bytes"] >= tracked["peak_rss_bytes"] > 0

    def test_memory_columns_survive_rotation(self, movie_database, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(str(path), max_bytes=2500) as audit:
            nalix = NaLIX(movie_database, audit_log=audit)
            for _ in range(8):
                nalix.ask("Return every movie.", memory=True)
        rolled = tmp_path / "audit.jsonl.1"
        assert rolled.exists(), "rotation never happened"
        # Rotation keeps at most two files; every record that survived
        # must still be intact JSON carrying the memory columns.
        entries = []
        for part in (rolled, path):
            chunk = read_audit_log(str(part))
            assert chunk, f"{part} rotated out empty"
            entries.extend(chunk)
        assert 2 <= len(entries) <= 8
        for entry in entries:
            assert entry["peak_rss_bytes"] > 0
            assert isinstance(entry["alloc_bytes"], int)
            assert entry["peak_alloc_bytes"] >= 0
