"""Per-operator plan statistics: unit behaviour and pipeline integration."""

import json

from repro.obs.plan_stats import (
    OperatorStats,
    PlanStatsCollection,
    activate_plan_stats,
    current_plan_stats,
    operator,
)


class TestOperatorStats:
    def test_nesting_and_rows(self):
        collection = PlanStatsCollection()
        with collection.operator("flwor", detail="planned") as flwor:
            with collection.operator("scan", detail="$v1") as scan:
                scan.rows_in = 10
                scan.rows_out = 4
            flwor.rows_out = 4
        assert [root.name for root in collection.roots] == ["flwor"]
        assert collection.roots[0].children[0].rows_in == 10
        assert collection.find("scan").detail == "$v1"

    def test_start_stop_accumulates_across_loop(self):
        """The let-cache pattern: closed once, resumed per tuple."""
        collection = PlanStatsCollection()
        with collection.operator("let") as let_op:
            pass
        assert let_op.seconds >= 0.0
        before = let_op.seconds
        for _ in range(3):
            let_op.start()
            let_op.stop()
        assert let_op.seconds >= before
        let_op.stop()  # stop without start is harmless

    def test_exit_closes_abandoned_children(self):
        collection = PlanStatsCollection()
        outer = collection.operator("outer")
        outer.start()
        collection.operator("inner").start()  # never explicitly closed
        outer.__exit__(None, None, None)
        assert collection._stack == []

    def test_render_and_to_dict(self):
        root = OperatorStats("mqf-join", detail="$v1, $v2")
        root.rows_in = 12
        root.rows_out = 3
        root.set("population", 2)
        child = OperatorStats("scan")
        child.rows_out = 12
        root.children.append(child)
        text = root.render(timings=False)
        assert "mqf-join  $v1, $v2  rows=12→3  population=2" in text
        assert "└─ scan  rows=12" in text
        assert "ms" not in text
        entry = root.to_dict()
        assert entry["attributes"] == {"population": 2}
        assert entry["children"][0]["operator"] == "scan"
        json.dumps(entry)  # must be JSON-serializable

    def test_render_includes_timings_by_default(self):
        root = OperatorStats("scan")
        assert "ms)" in root.render()


class TestAmbientCollection:
    def test_noop_outside_active_collection(self):
        assert current_plan_stats() is None
        with operator("scan") as op:
            op.rows_in = 5
            op.set("key", "value")
        assert op.rows_in is None
        assert op.attributes == {}

    def test_activation_scopes_the_collector(self):
        collection = PlanStatsCollection()
        with activate_plan_stats(collection):
            assert current_plan_stats() is collection
            with operator("scan") as op:
                op.rows_out = 1
        assert current_plan_stats() is None
        assert collection.roots[0] is op

    def test_truncation_is_visible(self):
        collection = PlanStatsCollection(max_operators=2)
        for _ in range(4):
            with collection.operator("scan"):
                pass
        assert collection.truncated
        assert len(collection.roots) == 2
        assert collection.to_dict()["truncated"] is True
        assert "truncated at 2" in collection.render()

    def test_not_truncated_by_default(self):
        collection = PlanStatsCollection()
        with collection.operator("scan"):
            pass
        assert "truncated" not in collection.to_dict()


class TestPipelineIntegration:
    def test_ask_attaches_plan_stats(self, movie_nalix):
        result = movie_nalix.ask(
            "Return every movie where its year is after 1994."
        )
        assert result.ok
        stats = result.plan_stats
        assert stats is not None and bool(stats)
        names = {op.name for op in stats.iter_operators()}
        assert {"flwor", "scan", "return"} <= names
        flwor = stats.find("flwor")
        assert flwor.detail in ("planned", "naive")
        scan = stats.find("scan")
        assert scan.rows_in is not None and scan.rows_in >= scan.rows_out
        ret = stats.find("return")
        assert ret.rows_out == len(result.items)

    def test_structural_join_cardinalities(self, movie_nalix):
        result = movie_nalix.ask(
            "Return the title of every movie whose director is Ron Howard."
        )
        assert result.ok
        join = result.plan_stats.find("mqf-join")
        assert join is not None
        assert join.rows_in >= join.rows_out
        assert join.attributes.get("population", 0) >= 1

    def test_let_cache_hits_surface(self, movie_nalix):
        result = movie_nalix.ask(
            "Return every director, where the number of movies directed "
            "by the director is the same as the number of movies directed "
            "by Ron Howard."
        )
        assert result.ok
        lets = [op for op in result.plan_stats.iter_operators()
                if op.name == "let"]
        assert lets, "aggregate query should evaluate let clauses"
        assert any(op.attributes.get("cache_hits", 0) > 0 for op in lets)

    def test_failed_parse_leaves_empty_stats(self, movie_nalix):
        result = movie_nalix.ask("")
        assert not result.ok
        assert result.plan_stats is not None
        assert not bool(result.plan_stats)
