"""The flight recorder: byte bounds, eviction, dumps, rate limiting."""

import json

from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Trace


def make_trace():
    trace = Trace()
    with trace.span("parse"):
        pass
    with trace.span("evaluate"):
        pass
    return trace


class TestRecord:
    def test_retains_and_reads_back(self):
        recorder = FlightRecorder(max_bytes=1 << 20)
        entry = recorder.record("a" * 32, trace=make_trace(),
                                reason="error", tenant="t1",
                                status="failed", seconds=0.5)
        assert entry is not None
        assert recorder.get("a" * 32) is entry
        assert len(recorder) == 1
        assert entry.trace_dict is not None

    def test_byte_bound_holds_under_sustained_load(self):
        recorder = FlightRecorder(max_bytes=16 * 1024)
        for i in range(500):
            recorder.record(f"{i:032x}", trace=make_trace(),
                            reason="head", sentence="x" * 100)
        snapshot = recorder.snapshot()
        assert snapshot["bytes"] <= 16 * 1024
        assert snapshot["evicted_total"] > 0
        # The bound also matches the actual serialized content.
        actual = sum(
            len(record.to_json()) for record in recorder.records()
        )
        assert actual == snapshot["bytes"]

    def test_evicts_oldest_first(self):
        recorder = FlightRecorder(max_bytes=2048)
        first = recorder.record("a" * 32, reason="head")
        assert first is not None
        for i in range(50):
            recorder.record(f"{i:032x}", reason="head")
        assert recorder.get("a" * 32) is None

    def test_refuses_oversize_record(self):
        recorder = FlightRecorder(max_bytes=256)
        entry = recorder.record("a" * 32, reason="error",
                                sentence="x" * 10_000)
        assert entry is None
        assert len(recorder) == 0

    def test_by_reason_accounting(self):
        recorder = FlightRecorder()
        recorder.record("a" * 32, reason="error")
        recorder.record("b" * 32, reason="error")
        recorder.record("c" * 32, reason="slow")
        assert recorder.snapshot()["by_reason"] == {"error": 2, "slow": 1}


class TestDumps:
    def test_jsonl_round_trips(self):
        recorder = FlightRecorder()
        recorder.record("a" * 32, trace=make_trace(), reason="error",
                        tenant="t1")
        lines = recorder.dump_jsonl().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["trace_id"] == "a" * 32
        assert record["reason"] == "error"
        names = [span["name"] for span in record["trace"]["spans"]]
        assert names == ["parse", "evaluate"]

    def test_chrome_document_has_lanes(self):
        recorder = FlightRecorder()
        recorder.record("a" * 32, trace=make_trace(), reason="slow")
        document = recorder.dump_chrome()
        names = [
            event["args"]["name"]
            for event in document["traceEvents"]
            if event.get("ph") == "M" and event.get("name") == "thread_name"
        ]
        assert any("slow aaaaaaaa" in name for name in names)

    def test_dump_to_writes_both_files(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("a" * 32, trace=make_trace(), reason="error")
        jsonl_path, chrome_path = recorder.dump_to(
            str(tmp_path / "bundle")
        )
        assert json.loads(open(jsonl_path).readline())["reason"] == "error"
        assert "traceEvents" in json.load(open(chrome_path))


class TestTriggerDump:
    def test_noop_without_dump_dir(self):
        recorder = FlightRecorder()
        assert recorder.trigger_dump("breaker-open") is None

    def test_writes_named_bundle(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        recorder.record("a" * 32, reason="error")
        prefix = recorder.trigger_dump("breaker-open-internal")
        assert prefix is not None
        assert "breaker-open-internal" in prefix
        assert (tmp_path / (prefix.split("/")[-1] + ".jsonl")).exists()

    def test_rate_limited(self, tmp_path):
        clock = [100.0]
        recorder = FlightRecorder(dump_dir=str(tmp_path),
                                  min_dump_interval=30.0,
                                  clock=lambda: clock[0])
        assert recorder.trigger_dump("first") is not None
        assert recorder.trigger_dump("storm") is None
        clock[0] += 31.0
        assert recorder.trigger_dump("later") is not None
        assert recorder.snapshot()["dumps"] == 2

    def test_reason_is_sanitized(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        prefix = recorder.trigger_dump("../../../etc/passwd !")
        assert prefix is not None
        assert "/etc/" not in prefix.replace(str(tmp_path), "")
