"""ask() tracing: span tree shape, timings, and per-failure-mode status."""

import pytest

from repro.core.errors import TranslationError
from repro.core.interface import NaLIX
from repro.obs.spans import Span
from repro.xquery.errors import XQueryEvaluationError


def stage_names(trace):
    (root,) = trace.roots
    return [child.name for child in root.children]


class TestSuccessTrace:
    def test_full_stage_tree(self, movie_nalix):
        result = movie_nalix.ask("Return the title of every movie.")
        assert result.ok
        (root,) = result.trace.roots
        assert root.name == "ask"
        assert root.status == Span.OK
        assert root.attributes["status"] == "ok"
        assert stage_names(result.trace) == [
            "parse", "classify", "validate", "translate", "analyze",
            "xquery-parse", "evaluate",
        ]
        assert all(child.status == Span.OK for child in root.children)

    def test_stage_durations_sum_to_total(self, movie_nalix):
        result = movie_nalix.ask("Return the title of every movie.")
        (root,) = result.trace.roots
        stages = sum(child.duration_seconds for child in root.children)
        assert stages <= root.duration_seconds
        # The stages cover the ask span up to bookkeeping noise.
        assert stages == pytest.approx(root.duration_seconds, rel=0.25)

    def test_timing_properties_derived_from_spans(self, movie_nalix):
        result = movie_nalix.ask("Return the title of every movie.")
        assert result.parse_seconds == result.stage_seconds("parse")
        assert result.translation_seconds == result.stage_seconds("translate")
        assert result.evaluation_seconds == pytest.approx(
            result.stage_seconds("xquery-parse")
            + result.stage_seconds("evaluate")
        )
        assert result.validation_seconds > 0
        assert result.total_seconds >= (
            result.parse_seconds + result.translation_seconds
        )

    def test_translation_seconds_excludes_parse_time(self, movie_nalix):
        """The pre-obs interface folded parse/classify/validate time into
        translation_seconds; it must now be the translate stage only."""
        result = movie_nalix.ask("Return the title of every movie.")
        (root,) = result.trace.roots
        translate = root.find("translate")
        assert result.translation_seconds == translate.duration_seconds
        assert result.translation_seconds < root.duration_seconds

    def test_no_evaluation_spans_when_not_evaluating(self, movie_nalix):
        result = movie_nalix.ask("Return every movie.", evaluate=False)
        assert result.ok
        # The static-analysis gate is always on, even without evaluation.
        assert stage_names(result.trace) == [
            "parse", "classify", "validate", "translate", "analyze",
        ]
        assert result.evaluation_seconds == 0.0


class TestFailureTraces:
    def test_parse_failure(self, movie_nalix):
        result = movie_nalix.ask("")
        assert result.status == "rejected"
        (root,) = result.trace.roots
        assert root.status == Span.ERROR
        assert root.attributes["status"] == "rejected"
        assert stage_names(result.trace) == ["parse"]
        assert root.find("parse").status == Span.ERROR

    def test_multi_sentence_rejection_has_bare_root(self, movie_nalix):
        result = movie_nalix.ask("Return every movie. Return every title.")
        assert result.status == "rejected"
        (root,) = result.trace.roots
        assert root.status == Span.ERROR
        assert root.children == []

    def test_validation_rejection(self, movie_nalix):
        result = movie_nalix.ask("Return the isbn of every movie.")
        assert result.status == "rejected"
        assert stage_names(result.trace) == ["parse", "classify", "validate"]
        validate = result.trace.find("validate")
        assert validate.status == Span.ERROR
        assert validate.attributes["errors"] >= 1
        assert result.translation_seconds == 0.0

    def test_translation_failure(self, movie_database, monkeypatch):
        nalix = NaLIX(movie_database)

        def explode(tree):
            raise TranslationError("forced for the test")

        monkeypatch.setattr(nalix.translator, "translate", explode)
        result = nalix.ask("Return every movie.")
        assert result.status == "failed"
        assert stage_names(result.trace) == [
            "parse", "classify", "validate", "translate",
        ]
        assert result.trace.find("translate").status == Span.ERROR
        assert any(m.code == "translation-failure" for m in result.errors)

    def test_evaluation_failure(self, movie_database, monkeypatch):
        # degrade=False turns evaluation failures directly into errors
        # (the degradation ladder has its own tests under tests/resilience).
        nalix = NaLIX(movie_database, degrade=False)

        def explode(expr):
            raise XQueryEvaluationError("forced for the test")

        monkeypatch.setattr(nalix.evaluator, "run", explode)
        result = nalix.ask("Return every movie.")
        assert result.status == "failed"
        assert not result.ok
        evaluate = result.trace.find("evaluate")
        assert evaluate is not None
        assert evaluate.status == Span.ERROR
        assert any(m.code == "evaluation-failure" for m in result.errors)

    def test_evaluation_failure_degrades_by_default(
        self, movie_database, monkeypatch
    ):
        nalix = NaLIX(movie_database)

        def explode(expr):
            raise XQueryEvaluationError("forced for the test")

        monkeypatch.setattr(nalix.evaluator, "run", explode)
        result = nalix.ask("Return every movie.")
        assert result.ok
        assert result.status == "degraded"
        assert result.degradation_path == ["naive-flwor"]
        assert any(m.code == "degraded-answer" for m in result.warnings)

    def test_spans_closed_when_evaluation_raises(
        self, movie_database, monkeypatch
    ):
        """Spans opened inside a failing stage are finished, never left
        open — the --trace output and audited stage timings stay
        complete on exception paths."""
        nalix = NaLIX(movie_database, degrade=False)

        def explode(expr):
            from repro.obs.spans import current_trace

            current_trace().span("inner-work")  # opened, never closed
            raise XQueryEvaluationError("forced for the test")

        monkeypatch.setattr(nalix.evaluator, "run", explode)
        result = nalix.ask("Return every movie.")
        assert result.status == "failed"
        assert result.trace.find("inner-work") is not None
        assert all(
            span.ended_at is not None for span in result.trace.iter_spans()
        )

    def test_status_vocabulary(self, movie_nalix):
        assert movie_nalix.ask("Return every movie.").status == "ok"
        assert (
            movie_nalix.ask("Return the isbn of every movie.").status
            == "rejected"
        )
