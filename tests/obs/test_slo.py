"""The SLO engine: spec parsing, burn rates, multi-window alerting."""

import pytest

from repro.obs.slo import SLOEngine, SLOSpec, default_serving_slos


class TestSpecParse:
    def test_availability(self):
        spec = SLOSpec.parse("availability:0.99")
        assert spec.kind == "availability"
        assert spec.target == 0.99
        assert spec.endpoint is None

    def test_latency_with_threshold(self):
        spec = SLOSpec.parse("latency:0.95@0.3")
        assert spec.kind == "latency"
        assert spec.threshold_seconds == 0.3

    def test_endpoint_scope(self):
        spec = SLOSpec.parse("latency:0.99@0.5@/query")
        assert spec.endpoint == "/query"
        assert spec.threshold_seconds == 0.5
        assert spec.name == "latency-query"

    def test_at_parts_are_positional_by_type(self):
        spec = SLOSpec.parse("latency:0.99@/query@0.5")
        assert spec.endpoint == "/query"
        assert spec.threshold_seconds == 0.5

    def test_bad_specs_raise(self):
        for text in ("availability", "availability:nope", "latency:0.99",
                     "bogus:0.9", "availability:1.5", "latency:0.9@x"):
            with pytest.raises(ValueError):
                SLOSpec.parse(text)


class TestClassify:
    def test_availability_counts_every_request(self):
        spec = SLOSpec("availability", 0.99)
        assert spec.classify(True, 10.0) is True
        assert spec.classify(False, 0.001) is False

    def test_latency_skips_failures(self):
        spec = SLOSpec("latency", 0.99, threshold_seconds=0.5)
        assert spec.classify(True, 0.1) is True
        assert spec.classify(True, 0.9) is False
        assert spec.classify(False, 0.1) is None

    def test_endpoint_matching(self):
        spec = SLOSpec("availability", 0.99, endpoint="/query")
        assert spec.matches("/query")
        assert not spec.matches("/xquery")
        assert SLOSpec("availability", 0.99).matches("/anything")


class TestBurnRate:
    def _engine(self, **kwargs):
        return SLOEngine(
            specs=[SLOSpec("availability", 0.99)],
            fast_seconds=300, slow_seconds=3600, **kwargs
        )

    def test_all_good_burns_nothing(self):
        engine = self._engine()
        for i in range(100):
            engine.record_request("/query", True, 0.01, now=1000.0 + i)
        entry = engine.snapshot(now=1100.0)[0]
        assert entry["windows"]["fast"]["burn_rate"] == 0.0
        assert entry["error_budget_remaining"] == 1.0

    def test_burn_rate_is_bad_fraction_over_budget(self):
        engine = self._engine()
        # 10% bad against a 1% budget -> burn rate 10.
        for i in range(90):
            engine.record_request("/q", True, 0.01, now=1000.0)
        for i in range(10):
            engine.record_request("/q", False, 0.01, now=1000.0)
        entry = engine.snapshot(now=1000.0)[0]
        assert entry["windows"]["fast"]["burn_rate"] == pytest.approx(10.0)
        assert entry["windows"]["slow"]["burn_rate"] == pytest.approx(10.0)

    def test_fast_window_forgets_old_errors(self):
        engine = self._engine()
        for _ in range(50):
            engine.record_request("/q", False, 0.01, now=1000.0)
        # 10 minutes later the 5m fast window is clean, the 1h slow
        # window still remembers.
        entry = engine.snapshot(now=1600.0)[0]
        assert entry["windows"]["fast"]["bad"] == 0
        assert entry["windows"]["slow"]["bad"] == 50

    def test_budget_remaining_decreases_with_errors(self):
        engine = self._engine()
        for i in range(990):
            engine.record_request("/q", True, 0.01, now=1000.0)
        for i in range(10):
            engine.record_request("/q", False, 0.01, now=1000.0)
        entry = engine.snapshot(now=1000.0)[0]
        assert entry["error_budget_remaining"] == pytest.approx(0.0)


class TestAlerting:
    def test_hook_fires_once_per_episode(self):
        fired = []
        engine = SLOEngine(
            specs=[SLOSpec("availability", 0.99)],
            fast_seconds=300, slow_seconds=3600,
            fast_burn_threshold=10.0,
            on_fast_burn=lambda spec, snap: fired.append(spec.name),
        )
        # Sustained 100% errors: both windows blow past threshold.
        for i in range(50):
            engine.record_request("/q", False, 0.01, now=1000.0 + i)
        assert fired == ["availability-all"]
        # Still burning: no second callback.
        for i in range(50):
            engine.record_request("/q", False, 0.01, now=1050.0 + i)
        assert fired == ["availability-all"]

    def test_rearms_after_fast_window_recovers(self):
        fired = []
        engine = SLOEngine(
            specs=[SLOSpec("availability", 0.9)],
            fast_seconds=10, slow_seconds=3600,
            fast_burn_threshold=5.0,
            on_fast_burn=lambda spec, snap: fired.append(spec.name),
        )
        for i in range(20):
            engine.record_request("/q", False, 0.01, now=1000.0)
        assert len(fired) == 1
        # Healthy traffic after the fast window expired the errors:
        # alert clears...
        for i in range(200):
            engine.record_request("/q", True, 0.01, now=1030.0)
        assert engine.snapshot(now=1030.0)[0]["alerting"] is False
        # ...and a second incident fires a second callback.
        for i in range(400):
            engine.record_request("/q", False, 0.01, now=1050.0)
        assert len(fired) == 2

    def test_hook_errors_are_swallowed(self):
        def boom(spec, snap):
            raise RuntimeError("hook bug")

        engine = SLOEngine(
            specs=[SLOSpec("availability", 0.99)],
            fast_burn_threshold=1.0, on_fast_burn=boom,
        )
        for i in range(20):
            engine.record_request("/q", False, 0.01, now=1000.0)
        assert engine.snapshot(now=1000.0)[0]["alerting"] is True


class TestSurfaces:
    def test_default_slos_scope_query(self):
        specs = default_serving_slos()
        assert [spec.kind for spec in specs] == ["availability", "latency"]
        assert all(spec.endpoint == "/query" for spec in specs)

    def test_prometheus_lines_carry_all_gauges(self):
        engine = SLOEngine()
        engine.record_request("/query", True, 0.01, now=1000.0)
        text = "\n".join(engine.prometheus_lines(now=1000.0))
        assert 'repro_slo_burn_rate{slo="availability-query",window="fast"}' \
            in text
        assert 'repro_slo_error_budget_remaining{slo="latency-query"}' in text
        assert 'repro_slo_fast_burn_alert{slo="availability-query"} 0' in text

    def test_empty_engine_emits_nothing(self):
        assert SLOEngine(specs=[]).prometheus_lines() == []
