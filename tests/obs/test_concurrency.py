"""Thread-safety of the ContextVar-activated observability stack.

The serving layer calls ``NaLIX.ask`` from many threads at once; these
tests prove the per-query observability state does not bleed between
threads: each result's trace/provenance/plan-stats describes only its
own query, process-wide aggregates equal the sum of per-thread counts,
concurrent audit records never interleave, and the profiler's
process-global switch-interval tweak survives concurrent use.
"""

import json
import sys
import threading

from repro.core.interface import NaLIX
from repro.obs.audit import AuditLog
from repro.obs.metrics import METRICS
from repro.obs.profiler import SamplingProfiler


QUERIES = [
    "find all titles",
    "show every movie",
    "find all directors",
    "find all movies",
]


def run_in_threads(function, count):
    """Run ``function(index)`` in ``count`` threads; re-raise failures."""
    errors = []

    def _wrapped(index):
        try:
            function(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=_wrapped, args=(index,))
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestCrossThreadIsolation:
    def test_results_reference_only_their_own_query(self, movie_database):
        nalix = NaLIX(movie_database)
        # The single-threaded answers are the ground truth.
        expected = {
            sentence: nalix.ask(sentence) for sentence in QUERIES
        }
        rounds = 3
        results = {}
        lock = threading.Lock()

        def _ask(index):
            sentence = QUERIES[index % len(QUERIES)]
            result = nalix.ask(sentence)
            with lock:
                results[index] = (sentence, result)

        run_in_threads(_ask, len(QUERIES) * rounds)

        traces = set()
        for sentence, result in results.values():
            reference = expected[sentence]
            assert result.sentence == sentence
            assert result.status == "ok"
            # Same translation and same answer as the serial run: no
            # other thread's pipeline state leaked in.
            assert result.xquery_text == reference.xquery_text
            assert result.values() == reference.values()
            assert id(result.trace) not in traces
            traces.add(id(result.trace))

    def test_traces_and_plan_stats_are_per_query(self, movie_database):
        nalix = NaLIX(movie_database)
        results = {}
        lock = threading.Lock()

        def _ask(index):
            sentence = QUERIES[index % len(QUERIES)]
            result = nalix.ask(sentence)
            with lock:
                results[index] = result

        run_in_threads(_ask, len(QUERIES) * 2)
        for result in results.values():
            spans = list(result.trace.iter_spans())
            names = {span.name for span in spans}
            # One complete pipeline per trace — not 0 (lost to another
            # thread's context) and not 2x (another thread's spans).
            assert sum(1 for span in spans if span.name == "parse") == 1
            assert sum(1 for span in spans if span.name == "evaluate") == 1
            assert "translate" in names
            assert result.plan_stats is not None

    def test_metrics_totals_equal_sum_of_threads(self, movie_database):
        nalix = NaLIX(movie_database)
        before = METRICS.snapshot()["counters"].get("pipeline.queries", 0)
        per_thread = 4
        threads = 6

        def _ask(index):
            for _ in range(per_thread):
                assert nalix.ask(QUERIES[index % len(QUERIES)]).ok

        run_in_threads(_ask, threads)
        after = METRICS.snapshot()["counters"].get("pipeline.queries", 0)
        assert after - before == threads * per_thread


class TestConcurrentAuditLog:
    def test_records_never_interleave(self, movie_nalix, tmp_path):
        path = tmp_path / "audit.jsonl"
        audit = AuditLog(str(path), actor="test")
        per_thread = 5
        threads = 8

        def _record(index):
            result = movie_nalix.ask(QUERIES[index % len(QUERIES)])
            for sequence in range(per_thread):
                audit.record(result, extra={"thread": index,
                                            "sequence": sequence})

        run_in_threads(_record, threads)
        audit.close()
        entries = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                entries.append(json.loads(line))  # every line parses whole
        assert len(entries) == threads * per_thread
        seen = {(entry["thread"], entry["sequence"]) for entry in entries}
        assert len(seen) == threads * per_thread

    def test_rotation_under_concurrency_loses_nothing(self, movie_nalix,
                                                      tmp_path):
        path = tmp_path / "audit.jsonl"
        result = movie_nalix.ask("find all titles")
        probe = AuditLog(str(path), actor="probe")
        record_bytes = len(
            json.dumps(probe.record(result), sort_keys=True)
        ) + 1
        probe.close()
        path.unlink()

        audit = AuditLog(str(path), actor="test",
                         max_bytes=record_bytes * 4)
        threads, per_thread = 6, 10

        def _record(index):
            for sequence in range(per_thread):
                audit.record(result, extra={"thread": index,
                                            "sequence": sequence})

        run_in_threads(_record, threads)
        audit.close()
        entries = []
        for candidate in (path, path.with_suffix(path.suffix + ".1")):
            if candidate.exists():
                with open(candidate, encoding="utf-8") as handle:
                    for line in handle:
                        entries.append(json.loads(line))
        # Rotation keeps the active file plus one predecessor; nothing
        # in either file may be torn, and no (thread, sequence) pair
        # may appear twice.
        keys = [(entry["thread"], entry["sequence"]) for entry in entries]
        assert len(keys) == len(set(keys))
        assert len(keys) >= 4  # at least the last generation survives


class TestProfilerSwitchInterval:
    def test_concurrent_profilers_restore_the_interval(self, movie_nalix):
        original = sys.getswitchinterval()

        def _profile(index):
            profiler = SamplingProfiler(hz=200)
            profiler.start()
            movie_nalix.ask(QUERIES[index % len(QUERIES)])
            profiler.stop()

        run_in_threads(_profile, 4)
        assert sys.getswitchinterval() == original
