"""Unit tests for the span/trace layer."""

import time

import pytest

from repro.obs.spans import Span, Trace, activate_trace, current_trace, span


class TestSpan:
    def test_duration_measured(self):
        trace = Trace()
        with trace.span("work"):
            time.sleep(0.002)
        root = trace.roots[0]
        assert root.ended_at is not None
        assert root.duration_seconds >= 0.002

    def test_nesting(self):
        trace = Trace()
        with trace.span("outer"):
            with trace.span("inner-1"):
                pass
            with trace.span("inner-2"):
                with trace.span("leaf"):
                    pass
        assert [root.name for root in trace.roots] == ["outer"]
        outer = trace.roots[0]
        assert [child.name for child in outer.children] == ["inner-1", "inner-2"]
        assert outer.children[1].children[0].name == "leaf"

    def test_sibling_roots(self):
        trace = Trace()
        with trace.span("first"):
            pass
        with trace.span("second"):
            pass
        assert [root.name for root in trace.roots] == ["first", "second"]

    def test_error_status_on_exception(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise ValueError("boom")
        outer = trace.roots[0]
        assert outer.status == Span.ERROR
        assert outer.children[0].status == Span.ERROR
        assert outer.ended_at is not None

    def test_explicit_status_and_attributes(self):
        trace = Trace()
        with trace.span("stage", kind="test") as current:
            current.set("items", 7)
            current.status = Span.ERROR
        stage = trace.roots[0]
        assert stage.status == Span.ERROR
        assert stage.attributes == {"kind": "test", "items": 7}

    def test_nested_durations_bounded_by_parent(self):
        trace = Trace()
        with trace.span("outer"):
            with trace.span("inner"):
                time.sleep(0.002)
        outer = trace.roots[0]
        inner = outer.children[0]
        assert inner.duration_seconds <= outer.duration_seconds

    def test_find_and_stage_seconds(self):
        trace = Trace()
        with trace.span("outer"):
            with trace.span("stage"):
                pass
            with trace.span("stage"):
                pass
        assert trace.find("stage") is trace.roots[0].children[0]
        assert trace.find("missing") is None
        both = sum(
            child.duration_seconds for child in trace.roots[0].children
        )
        assert trace.stage_seconds("stage") == pytest.approx(both)

    def test_to_dict_and_render(self):
        trace = Trace()
        with trace.span("outer") as outer:
            outer.set("n", 1)
            with trace.span("inner"):
                pass
        tree = trace.to_dict()["spans"][0]
        assert tree["name"] == "outer"
        assert tree["attributes"] == {"n": 1}
        assert tree["children"][0]["name"] == "inner"
        rendered = trace.render()
        assert "outer" in rendered
        assert "└─ inner" in rendered
        assert "ms" in rendered


class TestContextTrace:
    def test_module_level_span_attaches_to_active_trace(self):
        trace = Trace()
        with activate_trace(trace):
            assert current_trace() is trace
            with span("stage") as current:
                current.set("x", 1)
        assert current_trace() is None
        assert trace.roots[0].name == "stage"
        assert trace.roots[0].attributes == {"x": 1}

    def test_module_level_span_is_noop_without_trace(self):
        assert current_trace() is None
        with span("stage") as current:
            current.set("ignored", True)  # must not raise
        assert current.duration_seconds == 0.0
