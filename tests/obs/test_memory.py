"""Tests for per-query memory accounting."""

import tracemalloc

import pytest

from repro.obs.memory import (
    MemorySpec,
    MemoryTracker,
    activate_memory_tracking,
    current_memory_spec,
    peak_rss_bytes,
)
from repro.obs.spans import Trace


class TestPeakRss:
    def test_positive_and_monotonic(self):
        first = peak_rss_bytes()
        assert first > 0
        blob = bytearray(4 * 1024 * 1024)
        second = peak_rss_bytes()
        del blob
        assert second >= first


class TestMemorySpec:
    def test_coerce_falsy(self):
        assert MemorySpec.coerce(None) is None
        assert MemorySpec.coerce(False) is None

    def test_coerce_true_and_passthrough(self):
        assert MemorySpec.coerce(True).top_sites == 10
        spec = MemorySpec(top_sites=3)
        assert MemorySpec.coerce(spec) is spec

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            MemorySpec.coerce(42)


class TestRssOnlyTracker:
    def test_untracked_records_rss_but_no_allocs(self):
        tracker = MemoryTracker.from_spec(None)
        with tracker:
            pass
        assert tracker.tracked is False
        assert tracker.peak_rss_bytes > 0
        assert tracker.alloc_bytes is None
        assert tracker.stages == {}
        assert tracker.top_sites == []

    def test_untracked_stage_is_noop(self):
        tracker = MemoryTracker.from_spec(None).start()
        trace = Trace()
        with trace.span("parse") as span:
            with tracker.stage(span):
                pass
        tracker.stop()
        assert "alloc_bytes" not in span.attributes
        assert tracker.stages == {}

    def test_untracked_does_not_start_tracemalloc(self):
        was_tracing = tracemalloc.is_tracing()
        with MemoryTracker.from_spec(None):
            assert tracemalloc.is_tracing() == was_tracing


class TestTrackedTracker:
    def test_records_query_totals_and_top_sites(self):
        tracker = MemoryTracker.from_spec(MemorySpec(top_sites=5))
        with tracker:
            retained = [bytes(64) * 256 for _ in range(50)]
        assert tracker.alloc_bytes is not None
        assert tracker.alloc_bytes > 0
        assert tracker.peak_alloc_bytes >= tracker.alloc_bytes
        assert 0 < len(tracker.top_sites) <= 5
        site = tracker.top_sites[0]
        assert set(site) == {"site", "size_bytes", "count"}
        del retained

    def test_stage_deltas_land_on_spans_and_stages(self):
        tracker = MemoryTracker.from_spec(MemorySpec())
        trace = Trace()
        retained = []
        with tracker:
            with trace.span("evaluate") as span:
                with tracker.stage(span):
                    retained.append(bytearray(256 * 1024))
        assert span.attributes["alloc_bytes"] > 100 * 1024
        assert span.attributes["peak_alloc_bytes"] >= \
            span.attributes["alloc_bytes"]
        entry = tracker.stages["evaluate"]
        assert entry["calls"] == 1
        assert entry["alloc_bytes"] == span.attributes["alloc_bytes"]
        del retained

    def test_transient_allocation_shows_in_peak_not_net(self):
        tracker = MemoryTracker.from_spec(MemorySpec())
        trace = Trace()
        with tracker:
            with trace.span("evaluate") as span:
                with tracker.stage(span):
                    scratch = bytearray(2 * 1024 * 1024)
                    del scratch  # freed before the stage closes
        assert span.attributes["peak_alloc_bytes"] > 1024 * 1024
        assert span.attributes["alloc_bytes"] < 1024 * 1024
        # The query-level peak watermark saw the transient too.
        assert tracker.peak_alloc_bytes > 1024 * 1024

    def test_stop_is_idempotent_and_releases_tracemalloc(self):
        was_tracing = tracemalloc.is_tracing()
        tracker = MemoryTracker.from_spec(MemorySpec())
        tracker.start()
        tracker.stop()
        tracker.stop()
        assert tracemalloc.is_tracing() == was_tracing

    def test_to_dict_shape(self):
        tracker = MemoryTracker.from_spec(MemorySpec())
        trace = Trace()
        with tracker:
            with trace.span("parse") as span:
                with tracker.stage(span):
                    list(range(1000))
        entry = tracker.to_dict()
        assert entry["tracked"] is True
        assert entry["peak_rss_bytes"] > 0
        assert "alloc_bytes" in entry
        assert "parse" in entry["stages"]


class TestActivation:
    def test_default_off(self):
        assert current_memory_spec() is None

    def test_scoped_activation(self):
        with activate_memory_tracking(True) as spec:
            assert current_memory_spec() is spec
        assert current_memory_spec() is None

    def test_ask_honours_activation(self, movie_nalix):
        with activate_memory_tracking(True):
            result = movie_nalix.ask("Return the title of every movie.")
        assert result.memory is not None
        assert result.memory.tracked
        assert result.memory.alloc_bytes is not None
        assert "parse" in result.memory.stages
        assert "evaluate" in result.memory.stages


class TestAskIntegration:
    def test_every_ask_records_rss(self, movie_nalix):
        result = movie_nalix.ask("Return the title of every movie.")
        assert result.memory is not None
        assert result.memory.tracked is False
        assert result.memory.peak_rss_bytes > 0
        assert result.memory.alloc_bytes is None

    def test_memory_true_tracks_stages(self, movie_nalix):
        result = movie_nalix.ask(
            "Return the title of every movie.", memory=True
        )
        memory = result.memory
        assert memory.tracked
        assert memory.alloc_bytes is not None
        for stage in ("parse", "classify", "validate", "translate",
                      "xquery-parse", "evaluate"):
            assert stage in memory.stages, stage
        assert memory.top_sites

    def test_explain_renders_memory_section(self, movie_nalix):
        from repro.obs.explain import explain

        result = movie_nalix.ask(
            "Return the title of every movie.", memory=True
        )
        text = explain(result).render_text()
        assert "Memory (tracemalloc deltas + peak RSS):" in text
        assert "peak rss" in text
        assert "top allocation sites:" in text
        entry = explain(result).to_dict()
        assert entry["memory"]["tracked"] is True

    def test_audit_entry_memory_fields(self, movie_nalix):
        from repro.obs.audit import audit_entry

        plain = audit_entry(movie_nalix.ask("Return every movie."))
        assert plain["peak_rss_bytes"] > 0
        assert "alloc_bytes" not in plain
        tracked = audit_entry(
            movie_nalix.ask("Return every movie.", memory=True)
        )
        assert tracked["alloc_bytes"] is not None
        assert tracked["peak_alloc_bytes"] >= 0
