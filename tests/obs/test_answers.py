"""Canonical answer normalization and the stable answer digest."""

import random

from repro.obs.answers import (
    ANSWER_DIGEST_VERSION,
    DIGEST_HEX_CHARS,
    EMPTY_ANSWER_DIGEST,
    answer_digest,
    canonical_value,
    normalize_answer,
)


class _FakeNode:
    """Anything with string_value() canonicalizes like an XML node."""

    def __init__(self, text):
        self._text = text

    def string_value(self):
        return self._text


class TestCanonicalValue:
    def test_nodes_canonicalize_to_their_string_value(self):
        assert canonical_value(_FakeNode("TCP/IP Illustrated")) == \
            "TCP/IP Illustrated"

    def test_integral_floats_match_their_int_rendering(self):
        # XQuery arithmetic yields 1991.0 where the source text said
        # 1991; both spellings are the same answer.
        assert canonical_value(1991.0) == canonical_value(1991) == "1991"

    def test_non_integral_floats_keep_their_fraction(self):
        assert canonical_value(2.5) == "2.5"

    def test_booleans_render_as_xquery_booleans(self):
        assert canonical_value(True) == "true"
        assert canonical_value(False) == "false"

    def test_strings_pass_through(self):
        assert canonical_value("Addison-Wesley") == "Addison-Wesley"


class TestNormalizeAnswer:
    def test_order_insensitive(self):
        items = ["b", "a", "c"]
        assert normalize_answer(items) == ["a", "b", "c"]

    def test_duplicates_are_preserved(self):
        # The answer is a multiset: losing a duplicate row is drift.
        assert normalize_answer(["a", "a", "b"]) == ["a", "a", "b"]
        assert normalize_answer(["a", "b"]) != normalize_answer(
            ["a", "a", "b"]
        )


class TestAnswerDigest:
    def test_shuffled_tuples_produce_equal_digests(self):
        items = [_FakeNode(f"title-{i}") for i in range(20)]
        shuffled = list(items)
        random.Random(7).shuffle(shuffled)
        assert answer_digest(items) == answer_digest(shuffled)

    def test_float_formatting_does_not_change_the_digest(self):
        assert answer_digest([1991.0, "a"]) == answer_digest(["1991", "a"])

    def test_distinct_answers_differ(self):
        assert answer_digest(["a"]) != answer_digest(["b"])
        assert answer_digest(["a"]) != answer_digest(["a", "a"])
        assert answer_digest([]) != answer_digest(["a"])

    def test_digest_is_short_stable_hex(self):
        digest = answer_digest(["a", "b"])
        assert len(digest) == DIGEST_HEX_CHARS
        int(digest, 16)  # hex or raise
        assert digest == answer_digest(["a", "b"])

    def test_empty_answer_constant(self):
        assert EMPTY_ANSWER_DIGEST == answer_digest(())
        assert ANSWER_DIGEST_VERSION == 1


class TestPipelineStamping:
    def test_every_result_carries_the_digest_of_its_values(
        self, movie_nalix
    ):
        result = movie_nalix.ask("Return the title of every movie.")
        assert result.status == "ok"
        assert result.answer_digest == answer_digest(result.values())

    def test_identical_questions_share_a_digest(self, movie_nalix):
        first = movie_nalix.ask("Return the title of every movie.")
        second = movie_nalix.ask("Return the title of every movie.")
        assert first.answer_digest == second.answer_digest

    def test_different_questions_fingerprint_differently(self, movie_nalix):
        titles = movie_nalix.ask("Return the title of every movie.")
        everything = movie_nalix.ask("Return every movie.")
        assert titles.answer_digest != everything.answer_digest

    def test_rejected_queries_fingerprint_their_empty_answer(
        self, movie_nalix
    ):
        result = movie_nalix.ask("Return the isbn of every movie.")
        assert result.status == "rejected"
        assert result.answer_digest == EMPTY_ANSWER_DIGEST
