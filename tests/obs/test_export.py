"""Exporter wire-format validity: Chrome trace JSON and Prometheus text.

The Prometheus tests validate the exposition output with a small
line-by-line parser implementing the text-format 0.0.4 rules (HELP/TYPE
comments, legal metric names, float-parseable sample values) rather
than string-matching a handful of expected lines, so any malformed
line anywhere in the dump fails the test.
"""

import json
import re

from repro.obs.export import (
    LatencyWindow,
    chrome_trace,
    chrome_trace_json,
    prometheus_metric_name,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Trace

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')


def parse_prometheus_text(text):
    """Parse exposition text; raises AssertionError on malformed lines.

    Returns ``{metric_name: {"type": ..., "samples": [(labels, value)]}}``
    keyed by the base metric name declared in ``# TYPE`` lines.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    metrics = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            assert _NAME_RE.match(name), f"bad HELP name: {name}"
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert _NAME_RE.match(name), f"bad TYPE name: {name}"
            assert kind in ("counter", "gauge", "summary", "histogram",
                            "untyped"), f"bad metric type: {kind}"
            assert name not in metrics, f"duplicate TYPE for {name}"
            current = metrics[name] = {"type": kind, "samples": []}
            continue
        assert not line.startswith("#"), f"unknown comment line: {line}"
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line}"
        name = match.group("name")
        labels = {}
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                assert _LABEL_RE.match(pair), f"bad label pair: {pair}"
                key, value = pair.split("=", 1)
                labels[key] = value.strip('"')
        value = float(match.group("value"))  # must parse as a float
        assert current is not None, f"sample before any TYPE line: {line}"
        base = metrics.get(name.removesuffix("_sum").removesuffix("_count"),
                           metrics.get(name))
        assert base is not None, f"sample {name} missing a TYPE declaration"
        base["samples"].append((labels, value))
    return metrics


class TestPrometheusText:
    def test_snapshot_renders_parseable_exposition(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.queries").inc(3)
        registry.gauge("db.documents").set(2)
        histogram = registry.histogram("pipeline.total.seconds")
        for value in (0.01, 0.02, 0.03, 0.5):
            histogram.observe(value)
        text = prometheus_text(registry.snapshot())
        metrics = parse_prometheus_text(text)
        counter = metrics["repro_pipeline_queries_total"]
        assert counter["type"] == "counter"
        assert counter["samples"] == [({}, 3.0)]
        gauge = metrics["repro_db_documents"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"] == [({}, 2.0)]
        summary = metrics["repro_pipeline_total_seconds"]
        assert summary["type"] == "summary"
        quantiles = {
            labels["quantile"]: value
            for labels, value in summary["samples"]
            if "quantile" in labels
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        # Nearest rank: p50 of four samples is the 2nd smallest.
        assert quantiles["0.5"] == 0.02
        plain = {
            labels_value[1]
            for labels_value in summary["samples"]
            if not labels_value[0]
        }
        assert plain == {0.56, 4.0}  # _sum and _count

    def test_live_pipeline_dump_is_valid(self, movie_nalix):
        """The real registry + window dump passes the format parser."""
        movie_nalix.ask("Return the title of every movie.")
        from repro.obs.export import LATENCIES
        from repro.obs.metrics import METRICS

        text = prometheus_text(
            METRICS.snapshot(), extra_lines=LATENCIES.prometheus_lines()
        )
        metrics = parse_prometheus_text(text)
        assert "repro_pipeline_queries_total" in metrics
        assert "repro_window_total_seconds" in metrics
        for entry in metrics.values():
            assert entry["samples"], "TYPE declared without samples"

    def test_metric_name_sanitization(self):
        assert (prometheus_metric_name("pipeline.total.seconds")
                == "repro_pipeline_total_seconds")
        assert (prometheus_metric_name("weird-name!", "_total")
                == "repro_weird_name__total")
        assert prometheus_metric_name("9lives").startswith("repro__9lives")


class TestChromeTrace:
    def _traced_query(self, nalix):
        result = nalix.ask("Return the title of every movie.")
        assert result.trace is not None
        return result.trace

    def test_one_complete_event_per_closed_span(self, movie_nalix):
        trace = self._traced_query(movie_nalix)
        document = chrome_trace(trace)
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"] == {"name": "repro"}
        complete = [event for event in events if event["ph"] == "X"]
        closed = [span for span in trace.iter_spans()
                  if span.ended_at is not None]
        assert len(complete) == len(closed)
        for event in complete:
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0.0
            assert event["pid"] == 1

    def test_json_round_trips(self, movie_nalix):
        trace = self._traced_query(movie_nalix)
        parsed = json.loads(chrome_trace_json([trace, trace]))
        assert parsed["displayTimeUnit"] == "ms"
        tids = {event["tid"] for event in parsed["traceEvents"]
                if event["ph"] == "X"}
        assert tids == {1, 2}

    def test_open_spans_skipped(self):
        trace = Trace()
        with trace.span("closed"):
            pass
        trace.span("open")  # left open deliberately
        events = chrome_trace(trace)["traceEvents"]
        names = [event["name"] for event in events if event["ph"] == "X"]
        assert names == ["closed"]

    def test_non_jsonable_attributes_coerced(self):
        trace = Trace()
        with trace.span("s") as span:
            span.attributes["path"] = object()
        document = chrome_trace_json(trace)
        events = json.loads(document)["traceEvents"]
        (event,) = [entry for entry in events if entry["ph"] == "X"]
        assert isinstance(event["args"]["path"], str)

    def test_thread_name_metadata_per_trace(self, movie_nalix):
        first = self._traced_query(movie_nalix)
        second = self._traced_query(movie_nalix)
        document = chrome_trace(
            [first, second], names=["first query", "second query"]
        )
        metadata = [event for event in document["traceEvents"]
                    if event["ph"] == "M" and event["name"] == "thread_name"]
        assert [(event["tid"], event["args"]["name"]) for event in metadata] \
            == [(1, "first query"), (2, "second query")]

    def test_thread_name_defaults_without_names(self, movie_nalix):
        trace = self._traced_query(movie_nalix)
        document = chrome_trace([trace, trace])
        metadata = [event for event in document["traceEvents"]
                    if event["ph"] == "M" and event["name"] == "thread_name"]
        assert [event["args"]["name"] for event in metadata] \
            == ["query-1", "query-2"]


class TestLatencyWindow:
    def test_sliding_window_drops_old_samples(self):
        window = LatencyWindow(window=4)
        for value in (10.0, 10.0, 10.0, 10.0, 1.0, 2.0, 3.0, 4.0):
            window.observe("ask", value)
        quantiles = window.quantiles("ask")
        assert quantiles["count"] == 4
        # Nearest rank: p50 of [1, 2, 3, 4] is 2 (ceil(0.5 * 4) = rank 2).
        assert quantiles["p50"] == 2.0
        assert quantiles["p99"] == 4.0
        assert quantiles["mean"] == 2.5

    def test_empty_key_returns_zeros(self):
        window = LatencyWindow()
        assert window.quantiles("missing")["count"] == 0

    def test_prometheus_lines_parse(self):
        window = LatencyWindow(window=8)
        for value in (0.1, 0.2, 0.3):
            window.observe("stage.parse", value)
        text = "\n".join(window.prometheus_lines()) + "\n"
        metrics = parse_prometheus_text(text)
        summary = metrics["repro_window_stage_parse_seconds"]
        assert summary["type"] == "summary"
        counts = [value for labels, value in summary["samples"]
                  if not labels]
        assert 3.0 in counts


class TestProductionParser:
    """The shipped parser (`repro.obs.export.parse_prometheus_text`)
    that ``repro stats --url`` and the load generator scrape with —
    distinct from this module's local reference helper above."""

    def test_round_trips_an_exposition(self):
        from repro.obs.export import (
            parse_prometheus_text as production_parse,
            prometheus_sample_value,
        )

        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.gauge("serve.inflight").set(3)
        window = LatencyWindow(window=8)
        for value in (0.1, 0.2, 0.4):
            window.observe("endpoint:/query", value)
        text = prometheus_text(
            registry.snapshot(), extra_lines=window.prometheus_lines()
        )
        metrics = production_parse(text)
        assert prometheus_sample_value(
            metrics, "repro_serve_requests_total"
        ) == 7.0
        assert prometheus_sample_value(metrics, "repro_serve_inflight") == 3.0
        assert metrics["repro_serve_requests_total"]["type"] == "counter"
        p99 = prometheus_sample_value(
            metrics, "repro_window_endpoint:_query_seconds",
            {"quantile": "0.99"},
        )
        assert p99 == 0.4

    def test_skips_garbage_lines(self):
        from repro.obs.export import parse_prometheus_text as production_parse

        text = "\n".join([
            "# HELP repro_x something",
            "# TYPE repro_x counter",
            "repro_x 4",
            "!!! not a metric line",
            "repro_y not_a_number",
            "repro_z{label=\"a\"} 1.5 1700000000",
        ]) + "\n"
        metrics = production_parse(text)
        assert metrics["repro_x"]["samples"] == [({}, 4.0)]
        assert "repro_y" not in metrics
        assert metrics["repro_z"]["samples"] == [({"label": "a"}, 1.5)]
        assert metrics["repro_z"]["type"] == "untyped"

    def test_summary_series_resolve_their_type(self):
        from repro.obs.export import parse_prometheus_text as production_parse

        text = "\n".join([
            "# TYPE repro_lat summary",
            "repro_lat{quantile=\"0.5\"} 0.01",
            "repro_lat_sum 1.5",
            "repro_lat_count 100",
        ]) + "\n"
        metrics = production_parse(text)
        assert metrics["repro_lat"]["type"] == "summary"
        assert metrics["repro_lat_sum"]["type"] == "summary"
        assert metrics["repro_lat_count"]["type"] == "summary"

    def test_sample_value_subset_label_match(self):
        from repro.obs.export import (
            parse_prometheus_text as production_parse,
            prometheus_sample_value,
        )

        text = 'repro_m{a="1",b="2"} 10\nrepro_m{a="2",b="2"} 20\n'
        metrics = production_parse(text)
        assert prometheus_sample_value(metrics, "repro_m", {"a": "2"}) == 20.0
        assert prometheus_sample_value(metrics, "repro_m", {"a": "3"}) is None
        assert prometheus_sample_value(metrics, "repro_missing") is None
