"""Tail-based sampling: retention rules, p95 threshold, head rate."""

from repro.obs.sampler import TailSampler


class TestAlwaysRetain:
    def test_error_classes(self):
        sampler = TailSampler(head_rate=0.0)
        for error_class in ("internal", "exhausted"):
            decision = sampler.decide(status="failed",
                                      error_class=error_class)
            assert decision.retain
            assert decision.reason == "error"

    def test_failed_status(self):
        sampler = TailSampler(head_rate=0.0)
        assert sampler.decide(status="failed").reason == "error"

    def test_degraded(self):
        sampler = TailSampler(head_rate=0.0)
        decision = sampler.decide(status="degraded",
                                  error_class="degraded")
        assert decision.retain
        assert decision.reason == "degraded"

    def test_watchdog_beats_everything(self):
        sampler = TailSampler(head_rate=0.0)
        decision = sampler.decide(status="failed", error_class="internal",
                                  stuck=True)
        assert decision.reason == "watchdog"
        assert sampler.decide(status="ok", expired=True).reason == "watchdog"

    def test_error_retention_is_total(self):
        sampler = TailSampler(head_rate=0.0)
        for _ in range(200):
            sampler.decide(status="failed", error_class="internal")
        snapshot = sampler.snapshot()
        assert snapshot["retention"]["error"] == 1.0


class TestSlowTail:
    def test_retains_above_p95(self):
        sampler = TailSampler(head_rate=0.0, min_tail_samples=20)
        for _ in range(100):
            sampler.decide(status="ok", seconds=0.01)
        decision = sampler.decide(status="ok", seconds=1.0)
        assert decision.retain
        assert decision.reason == "slow"

    def test_no_threshold_while_warming(self):
        sampler = TailSampler(head_rate=0.0, min_tail_samples=20)
        # Before min_tail_samples the p95 is unknown: nothing is "slow".
        decision = sampler.decide(status="ok", seconds=100.0)
        assert not decision.retain
        assert sampler.tail_threshold() is None

    def test_threshold_tracks_the_window(self):
        sampler = TailSampler(head_rate=0.0, window=50, min_tail_samples=10)
        for _ in range(50):
            sampler.decide(status="ok", seconds=0.01)
        slow_before = sampler.tail_threshold()
        for _ in range(50):
            sampler.decide(status="ok", seconds=1.0)
        assert sampler.tail_threshold() > slow_before


class TestHeadSampling:
    def test_every_nth_exactly(self):
        sampler = TailSampler(head_rate=0.1)
        kept = sum(
            1 for _ in range(100)
            if sampler.decide(status="ok", seconds=0.01).retain
        )
        assert kept == 10

    def test_zero_rate_drops_all_healthy(self):
        sampler = TailSampler(head_rate=0.0)
        assert not any(
            sampler.decide(status="ok", seconds=0.01).retain
            for _ in range(50)
        )

    def test_rate_one_keeps_everything(self):
        sampler = TailSampler(head_rate=1.0)
        assert all(
            sampler.decide(status="ok", seconds=0.01).retain
            for _ in range(20)
        )

    def test_healthy_fraction_is_bounded(self):
        sampler = TailSampler(head_rate=0.1, min_tail_samples=10**9)
        for _ in range(1000):
            sampler.decide(status="ok", seconds=0.01)
        snapshot = sampler.snapshot()
        assert snapshot["retention"]["healthy"] <= 0.1


class TestSnapshot:
    def test_accounting_by_category(self):
        sampler = TailSampler(head_rate=0.5)
        sampler.decide(status="failed", error_class="internal")
        sampler.decide(status="degraded", error_class="degraded")
        sampler.decide(status="ok", seconds=0.01)
        sampler.decide(status="ok", seconds=0.01)
        snapshot = sampler.snapshot()
        assert snapshot["seen"]["error"] == 1
        assert snapshot["seen"]["degraded"] == 1
        assert snapshot["seen"]["healthy"] == 2
        assert snapshot["retained"]["error"] == 1
        assert snapshot["head_rate"] == 0.5

    def test_empty_retention_is_none(self):
        snapshot = TailSampler().snapshot()
        assert snapshot["retention"]["error"] is None
