"""W3C traceparent parsing, formatting, and id minting."""

from repro.obs.tracecontext import (
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)


class TestIds:
    def test_trace_id_shape(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        assert int(trace_id, 16) >= 0

    def test_span_id_shape(self):
        span_id = new_span_id()
        assert len(span_id) == 16
        assert int(span_id, 16) >= 0

    def test_ids_are_random(self):
        assert len({new_trace_id() for _ in range(32)}) == 32


class TestFormat:
    def test_round_trip(self):
        trace_id = new_trace_id()
        header = format_traceparent(trace_id)
        parsed = parse_traceparent(header)
        assert parsed is not None
        assert parsed[0] == trace_id

    def test_explicit_span_id(self):
        header = format_traceparent("ab" * 16, span_id="cd" * 8)
        assert header == "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"

    def test_unsampled_flag(self):
        header = format_traceparent("ab" * 16, sampled=False)
        assert header.endswith("-00")


class TestParse:
    def test_valid_header(self):
        header = "00-" + "1" * 32 + "-" + "2" * 16 + "-01"
        assert parse_traceparent(header) == ("1" * 32, "2" * 16)

    def test_case_and_whitespace_tolerant(self):
        header = "  00-" + "A" * 32 + "-" + "B" * 16 + "-01  "
        assert parse_traceparent(header) == ("a" * 32, "b" * 16)

    def test_rejects_unknown_version(self):
        assert parse_traceparent("01-" + "1" * 32 + "-" + "2" * 16 + "-01") \
            is None

    def test_rejects_all_zero_ids(self):
        assert parse_traceparent("00-" + "0" * 32 + "-" + "2" * 16 + "-01") \
            is None
        assert parse_traceparent("00-" + "1" * 32 + "-" + "0" * 16 + "-01") \
            is None

    def test_rejects_garbage(self):
        for header in (None, "", "nonsense", "00-short-2222-01", 42):
            assert parse_traceparent(header) is None
