"""Tests for the sampling profiler and its output formats."""

import sys
import time

import pytest

from repro.obs.profiler import (
    DEFAULT_HZ,
    NO_SPAN,
    ProfileSpec,
    SamplingProfiler,
    activate_profiling,
    collapse_samples,
    collapsed_text,
    current_profile_spec,
    merge_profiles,
    speedscope_document,
    stage_of,
)
from repro.obs.spans import Trace


def _busy(seconds):
    """Spin the CPU (holding the GIL between bytecodes) for ``seconds``."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(50))
    return total


class TestProfileSpec:
    def test_coerce_none_and_false(self):
        assert ProfileSpec.coerce(None) is None
        assert ProfileSpec.coerce(False) is None

    def test_coerce_true_uses_default_rate(self):
        spec = ProfileSpec.coerce(True)
        assert spec.hz == DEFAULT_HZ

    def test_coerce_number_is_a_rate(self):
        assert ProfileSpec.coerce(250).hz == 250

    def test_coerce_spec_passthrough(self):
        spec = ProfileSpec(hz=123)
        assert ProfileSpec.coerce(spec) is spec

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            ProfileSpec.coerce("fast")

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            ProfileSpec(hz=0)


class TestSamplingLifecycle:
    def test_collects_samples_from_busy_loop(self):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            _busy(0.15)
        assert not profiler.running
        assert len(profiler.samples) >= 5
        # Our own busy loop must appear in the sampled frames.
        functions = {
            function
            for _, frames in profiler.samples
            for _, function, _ in frames
        }
        assert "_busy" in functions

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        _busy(0.02)
        profiler.stop()
        count = len(profiler.samples)
        profiler.stop()
        assert len(profiler.samples) == count
        assert not profiler.running

    def test_double_start_raises(self):
        profiler = SamplingProfiler(hz=200)
        with profiler:
            with pytest.raises(RuntimeError):
                profiler.start()

    def test_stops_on_exception_path(self):
        profiler = SamplingProfiler(hz=200)
        before = sys.getswitchinterval()
        with pytest.raises(RuntimeError):
            with profiler:
                _busy(0.01)
                raise RuntimeError("boom")
        assert not profiler.running
        assert sys.getswitchinterval() == before

    def test_switch_interval_lowered_while_running_and_restored(self):
        before = sys.getswitchinterval()
        profiler = SamplingProfiler(hz=500)
        with profiler:
            assert sys.getswitchinterval() <= 1.0 / 500
        assert sys.getswitchinterval() == before

    def test_max_samples_drops_instead_of_growing(self):
        profiler = SamplingProfiler(hz=500, max_samples=3)
        with profiler:
            _busy(0.1)
        assert len(profiler.samples) <= 3
        assert profiler.dropped > 0

    def test_overhead_is_bounded(self):
        # The sampler must not grossly slow the profiled thread.  The
        # bound is deliberately loose (CI machines are noisy); it exists
        # to catch pathological regressions like sampling without the
        # wait() sleep.
        start = time.perf_counter()
        _busy(0.1)
        bare = time.perf_counter() - start
        profiler = SamplingProfiler(hz=500)
        start = time.perf_counter()
        with profiler:
            _busy(0.1)
        profiled = time.perf_counter() - start
        assert profiled < bare * 5 + 0.5


class TestSpanAttribution:
    def test_samples_attribute_to_open_stage_span(self):
        trace = Trace()
        profiler = SamplingProfiler(hz=500, trace=trace)
        with profiler:
            with trace.span("ask"):
                with trace.span("evaluate"):
                    _busy(0.12)
        counts = profiler.span_sample_counts()
        assert counts, "no samples collected"
        assert max(counts, key=counts.get) == "evaluate"
        assert sum(counts.values()) == len(profiler.samples)

    def test_stage_is_span_under_root_not_innermost(self):
        trace = Trace()
        profiler = SamplingProfiler(hz=500, trace=trace)
        with profiler:
            with trace.span("ask"), trace.span("evaluate"), \
                    trace.span("evaluator.run"):
                _busy(0.12)
        counts = profiler.span_sample_counts()
        assert counts.get("evaluate", 0) > 0
        assert "evaluator.run" not in counts

    def test_unattributed_samples_fall_to_no_span(self):
        trace = Trace()
        profiler = SamplingProfiler(hz=500, trace=trace)
        with profiler:
            _busy(0.1)  # no span open at all
        counts = profiler.span_sample_counts()
        assert set(counts) == {NO_SPAN}

    def test_stage_of(self):
        assert stage_of(()) == NO_SPAN
        assert stage_of(("ask",)) == "ask"
        assert stage_of(("ask", "parse")) == "parse"
        assert stage_of(("ask", "evaluate", "evaluator.run")) == "evaluate"


SYNTHETIC_SAMPLES = [
    (("ask", "evaluate"), (("/x/a.py", "f", 1), ("/x/b.py", "g", 2))),
    (("ask", "evaluate"), (("/x/a.py", "f", 1), ("/x/b.py", "g", 9))),
    (("ask", "parse"), (("/x/a.py", "f", 1),)),
    ((), (("/x/c.py", "h", 3),)),
]


class TestCollapsedOutput:
    def test_collapse_merges_identical_stacks(self):
        counts = collapse_samples(SYNTHETIC_SAMPLES)
        # The two evaluate samples differ only by line number, which the
        # collapsed format ignores — they merge into one stack.
        assert counts["span:ask;span:evaluate;a.py:f;b.py:g"] == 2
        assert counts["span:ask;span:parse;a.py:f"] == 1
        assert counts[f"span:{NO_SPAN};c.py:h"] == 1

    def test_collapsed_text_format(self):
        text = collapsed_text(SYNTHETIC_SAMPLES)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack
            assert count.isdigit()
            assert line.startswith("span:")

    def test_merge_profiles_skips_none(self):
        profiler = SamplingProfiler(hz=100)
        profiler.samples.extend(SYNTHETIC_SAMPLES)
        merged = merge_profiles([None, profiler, None])
        assert merged == SYNTHETIC_SAMPLES


class TestSpeedscope:
    def test_document_shape(self):
        document = speedscope_document(
            SYNTHETIC_SAMPLES, 0.002, name="test-profile"
        )
        assert document["$schema"].startswith("https://www.speedscope.app")
        (profile,) = document["profiles"]
        assert profile["type"] == "sampled"
        assert profile["name"] == "test-profile"
        assert len(profile["samples"]) == len(SYNTHETIC_SAMPLES)
        assert profile["weights"] == [0.002] * len(SYNTHETIC_SAMPLES)
        frames = document["shared"]["frames"]
        # Frames are interned: every index in every sample is in range.
        for sample in profile["samples"]:
            for index in sample:
                assert 0 <= index < len(frames)
        names = {frame["name"] for frame in frames}
        assert "span:evaluate" in names

    def test_empty_samples(self):
        document = speedscope_document([], 0.001)
        (profile,) = document["profiles"]
        assert profile["samples"] == []
        assert profile["weights"] == []


class TestActivation:
    def test_default_is_off(self):
        assert current_profile_spec() is None

    def test_activation_scopes_spec(self):
        with activate_profiling(300) as spec:
            assert current_profile_spec() is spec
            assert spec.hz == 300
        assert current_profile_spec() is None

    def test_ask_honours_activation(self, movie_nalix):
        with activate_profiling(500):
            result = movie_nalix.ask("Return the title of every movie.")
        assert result.profile is not None
        assert not result.profile.running
        assert result.profile.hz == 500

    def test_ask_without_activation_has_no_profile(self, movie_nalix):
        result = movie_nalix.ask("Return the title of every movie.")
        assert result.profile is None


class TestAskIntegration:
    def test_explicit_profile_collects_and_stops(self, movie_nalix):
        result = movie_nalix.ask(
            "Return every director, where the number of movies directed "
            "by the director is the same as the number of movies directed "
            "by Ron Howard.",
            profile=True,
        )
        assert result.ok
        profiler = result.profile
        assert profiler is not None
        assert not profiler.running
        counts = profiler.span_sample_counts()
        # Every attributed stage must be a real pipeline stage (or the
        # root/no-span buckets for ticks outside the stage spans).
        allowed = {
            "parse", "classify", "validate", "translate", "xquery-parse",
            "evaluate", "evaluate-naive", "evaluate-keyword", "ask", NO_SPAN,
        }
        assert set(counts) <= allowed

    def test_profile_summary_in_to_dict(self, movie_nalix):
        result = movie_nalix.ask(
            "Return the title of every movie.", profile=True
        )
        summary = result.profile.to_dict()
        assert summary["hz"] == DEFAULT_HZ
        assert summary["samples"] == len(result.profile.samples)
        assert "span_samples" in summary
