"""Smoke tests: every example application runs end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, monkeypatch, capsys, argv=None):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setattr(sys, "argv", [str(path)] + (argv or []))
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        output = run_example("quickstart", monkeypatch, capsys)
        assert "Ron Howard" in output
        assert "XQuery:" in output

    def test_interactive_session(self, monkeypatch, capsys):
        output = run_example("interactive_session", monkeypatch, capsys)
        assert "the same as" in output      # the suggestion
        assert "Ron Howard" in output       # the final answer

    def test_dblp_queries(self, monkeypatch, capsys):
        output = run_example("dblp_queries", monkeypatch, capsys)
        assert output.count("NaLIX:") == 9
        assert output.count("keyword:") == 9

    def test_xquery_console(self, monkeypatch, capsys):
        output = run_example("xquery_console", monkeypatch, capsys)
        assert "TCP/IP Illustrated" in output

    @pytest.mark.slow
    def test_user_study_demo(self, monkeypatch, capsys):
        output = run_example("user_study_demo", monkeypatch, capsys)
        assert "Figure 11" in output
        assert "Table 7" in output
