"""Integration tests for the study runner (scaled-down cohort)."""

import pytest

from repro.data import DblpConfig
from repro.evaluation.report import StudyReport
from repro.evaluation.study import Study, StudyConfig


@pytest.fixture(scope="module")
def small_results():
    config = StudyConfig(
        participants=4, seed=77, dblp=DblpConfig(books=40, articles=60)
    )
    return Study(config).run()


class TestProtocol:
    def test_record_count(self, small_results):
        # participants x 9 tasks x 2 systems.
        assert len(small_results.records) == 4 * 9 * 2

    def test_each_cell_present(self, small_results):
        for system in ("nalix", "keyword"):
            for task_id in ("Q1", "Q3", "Q4", "Q6", "Q7", "Q8", "Q9", "Q10",
                            "Q11"):
                assert len(small_results.by_task(system, task_id)) == 4

    def test_deterministic(self):
        config = StudyConfig(
            participants=2, seed=5, dblp=DblpConfig(books=20, articles=20)
        )
        first = Study(config).run()
        second = Study(config).run()
        assert [
            (r.task_id, r.iterations, r.precision, r.recall)
            for r in first.records
        ] == [
            (r.task_id, r.iterations, r.precision, r.recall)
            for r in second.records
        ]

    def test_time_limit_respected(self, small_results):
        config_limit = 300.0
        for record in small_results.records:
            # One attempt may run past the limit (it was started inside).
            assert record.seconds < config_limit + 120.0

    def test_nalix_records_accepted(self, small_results):
        accepted = [r for r in small_results.by_system("nalix") if r.accepted]
        assert len(accepted) == len(small_results.by_system("nalix"))


class TestQualityShape:
    def test_nalix_beats_keyword_overall(self, small_results):
        def mean_f(records):
            return sum(r.harmonic for r in records) / len(records)

        assert mean_f(small_results.by_system("nalix")) > mean_f(
            small_results.by_system("keyword")
        )

    def test_misparse_injection_marks_records(self):
        config = StudyConfig(
            participants=6, seed=11, misparse_rate=1.0,
            dblp=DblpConfig(books=20, articles=20),
        )
        results = Study(config).run()
        nalix_records = results.by_system("nalix")
        assert any(not r.parsed_correctly for r in nalix_records)

    def test_zero_misparse_rate(self):
        config = StudyConfig(
            participants=2, seed=11, misparse_rate=0.0,
            dblp=DblpConfig(books=20, articles=20),
        )
        results = Study(config).run()
        specified = [
            r for r in results.by_system("nalix") if r.specified_correctly
        ]
        assert all(r.parsed_correctly for r in specified)


class TestReport:
    def test_figure11_rows(self, small_results):
        rows = StudyReport(small_results).figure11()
        assert set(rows) == {
            "Q1", "Q3", "Q4", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11",
        }
        for row in rows.values():
            assert row["avg_seconds"] > 0

    def test_figure12_rows(self, small_results):
        rows = StudyReport(small_results).figure12()
        for row in rows.values():
            assert 0.0 <= row["nalix_precision"] <= 1.0
            assert 0.0 <= row["keyword_recall"] <= 1.0

    def test_table7_totals(self, small_results):
        table = StudyReport(small_results).table7()
        assert table["all queries"]["total_queries"] == 4 * 9

    def test_render_is_printable(self, small_results):
        text = StudyReport(small_results).render()
        assert "Figure 11" in text
        assert "Figure 12" in text
        assert "Table 7" in text
