"""Unit tests for the precision/recall metrics (the paper's counting)."""

from repro.evaluation.metrics import harmonic_mean, leaf_items, precision_recall
from repro.xmlstore.parser import parse_document


def sample():
    return parse_document(
        '<bib><book year="1994"><title>A</title><author>X</author>'
        "<author>Y</author></book>"
        "<book year=\"2000\"><title>B</title><author>Z</author></book></bib>"
    )


class TestLeafItems:
    def test_leaf_element(self):
        document = sample()
        title = next(n for n in document.iter_elements() if n.tag == "title")
        items = leaf_items(title)
        assert len(items) == 1
        assert items[0][2] == "A"

    def test_container_expands_to_leaves(self):
        document = sample()
        book = document.root.child_elements("book")[0]
        items = leaf_items(book)
        values = sorted(item[2] for item in items)
        assert values == ["1994", "A", "X", "Y"]

    def test_attribute_item(self):
        document = sample()
        book = document.root.child_elements("book")[0]
        items = leaf_items(book.attributes[0])
        assert items[0][2] == "1994"

    def test_atomic_item(self):
        assert leaf_items(42)[0] == ("value", None, "42")


class TestPrecisionRecall:
    def test_perfect_match(self):
        document = sample()
        titles = [n for n in document.iter_elements() if n.tag == "title"]
        assert precision_recall(titles, titles) == (1.0, 1.0)

    def test_partial_recall(self):
        """The paper's example: all right elements but 3 of 4 attributes
        -> recall 75%."""
        document = sample()
        book = document.root.child_elements("book")[0]
        title, author_x, author_y = book.child_elements()
        gold = [title, author_x, author_y, book.attributes[0]]
        returned = [title, author_x, author_y]
        precision, recall = precision_recall(returned, gold)
        assert precision == 1.0
        assert recall == 0.75

    def test_superset_hurts_precision(self):
        document = sample()
        book = document.root.child_elements("book")[0]
        gold = book.child_elements("title")
        precision, recall = precision_recall([book], gold)
        assert recall == 1.0
        assert precision == 0.25  # 1 of the 4 leaf values requested

    def test_empty_both_perfect(self):
        assert precision_recall([], []) == (1.0, 1.0)

    def test_empty_returned(self):
        document = sample()
        titles = [n for n in document.iter_elements() if n.tag == "title"]
        assert precision_recall([], titles) == (0.0, 0.0)

    def test_atomic_values_match_by_value(self):
        assert precision_recall([3, 5], [3, 5]) == (1.0, 1.0)
        precision, recall = precision_recall([3, 5], [3, 4])
        assert precision == 0.5
        assert recall == 0.5

    def test_atomic_multiset_counting(self):
        precision, recall = precision_recall([3, 3], [3])
        assert precision == 0.5
        assert recall == 1.0

    def test_value_matches_node_gold(self):
        document = sample()
        title = next(n for n in document.iter_elements() if n.tag == "title")
        precision, recall = precision_recall(["A"], [title])
        assert precision == 1.0
        assert recall == 1.0


class TestOrderedMatching:
    def test_correct_order_full_score(self):
        document = sample()
        titles = sorted(
            (n for n in document.iter_elements() if n.tag == "title"),
            key=lambda n: n.string_value(),
        )
        assert precision_recall(titles, titles, ordered=True) == (1.0, 1.0)

    def test_wrong_order_penalised(self):
        document = sample()
        titles = sorted(
            (n for n in document.iter_elements() if n.tag == "title"),
            key=lambda n: n.string_value(),
        )
        precision, recall = precision_recall(
            list(reversed(titles)), titles, ordered=True
        )
        assert precision == 0.5
        assert recall == 0.5


class TestHarmonicMean:
    def test_zero(self):
        assert harmonic_mean(0.0, 0.0) == 0.0

    def test_perfect(self):
        assert harmonic_mean(1.0, 1.0) == 1.0

    def test_f1(self):
        assert abs(harmonic_mean(0.5, 1.0) - 2 / 3) < 1e-12
