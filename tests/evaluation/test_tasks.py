"""Tests for the XMP task definitions against the live system.

These are the evaluation harness's own acceptance tests: every task
must have non-empty gold, at least one correct phrasing that the real
NaLIX accepts with high quality, and its invalid phrasings must really
be rejected.
"""

import pytest

from repro.evaluation.metrics import harmonic_mean, precision_recall
from repro.evaluation.tasks import TASKS, task_by_id


class TestTaskTable:
    def test_nine_tasks(self):
        assert len(TASKS) == 9
        assert [task.task_id for task in TASKS] == [
            "Q1", "Q3", "Q4", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11",
        ]

    def test_task_by_id(self):
        assert task_by_id("Q7").ordered
        with pytest.raises(KeyError):
            task_by_id("Q2")

    def test_every_task_has_phrasing_varieties(self):
        for task in TASKS:
            assert task.good_phrasings(), task.task_id
            assert any(not p.valid for p in task.phrasings), task.task_id
            assert task.keyword_queries, task.task_id


class TestGold:
    @pytest.mark.parametrize("task", TASKS, ids=lambda t: t.task_id)
    def test_gold_nonempty(self, task, small_dblp_database):
        assert task.gold(small_dblp_database)


class TestPhrasingsAgainstSystem:
    @pytest.mark.parametrize("task", TASKS, ids=lambda t: t.task_id)
    def test_good_phrasings_accepted_with_quality(self, task, dblp_nalix,
                                                  small_dblp_database):
        gold = task.gold(small_dblp_database)
        for phrasing in task.good_phrasings():
            result = dblp_nalix.ask(phrasing.text)
            assert result.ok, f"{task.task_id}: {result.render_feedback()}"
            precision, recall = precision_recall(
                result.distinct_items(), gold, ordered=task.ordered
            )
            score = harmonic_mean(precision, recall)
            assert score >= 0.8, (
                f"{task.task_id} {phrasing.text!r}: P={precision:.2f} "
                f"R={recall:.2f}"
            )

    @pytest.mark.parametrize("task", TASKS, ids=lambda t: t.task_id)
    def test_invalid_phrasings_rejected(self, task, dblp_nalix):
        for phrasing in task.phrasings:
            if phrasing.valid:
                continue
            result = dblp_nalix.ask(phrasing.text)
            assert not result.ok, f"{task.task_id}: {phrasing.text!r}"
            assert result.errors

    @pytest.mark.parametrize("task", TASKS, ids=lambda t: t.task_id)
    def test_misspecified_phrasings_accepted_but_imperfect(
        self, task, dblp_nalix, small_dblp_database
    ):
        gold = task.gold(small_dblp_database)
        for phrasing in task.phrasings:
            if not phrasing.valid or phrasing.specified:
                continue
            result = dblp_nalix.ask(phrasing.text)
            assert result.ok, f"{task.task_id}: {result.render_feedback()}"
            precision, recall = precision_recall(
                result.distinct_items(), gold, ordered=task.ordered
            )
            assert harmonic_mean(precision, recall) < 0.999, (
                f"{task.task_id} {phrasing.text!r} scored perfectly but is "
                "labelled mis-specified"
            )
