"""Unit tests for the Latin-square ordering machinery."""

import pytest

from repro.evaluation.latin import (
    are_orthogonal,
    cyclic_latin_square,
    is_latin_square,
    orthogonal_pair,
    task_orders,
)


class TestConstruction:
    @pytest.mark.parametrize("order", [3, 5, 7, 9])
    def test_cyclic_squares_are_latin(self, order):
        assert is_latin_square(cyclic_latin_square(order, 1))
        assert is_latin_square(cyclic_latin_square(order, 2))

    @pytest.mark.parametrize("order", [3, 5, 9])
    def test_pair_is_orthogonal(self, order):
        first, second = orthogonal_pair(order)
        assert are_orthogonal(first, second)

    def test_even_order_rejected(self):
        with pytest.raises(ValueError):
            orthogonal_pair(4)

    def test_bad_multiplier_rejected(self):
        with pytest.raises(ValueError):
            cyclic_latin_square(5, 0)

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            cyclic_latin_square(0)


class TestTaskOrders:
    def test_paper_protocol_shape(self):
        orders = task_orders(9, 18)
        assert len(orders) == 18
        for order in orders:
            assert sorted(order) == list(range(9))

    def test_all_orders_distinct_for_18(self):
        orders = task_orders(9, 18)
        assert len({tuple(order) for order in orders}) == 18

    def test_positions_balanced(self):
        """Across the 18 participants each task appears at each position
        exactly twice (two 9x9 squares)."""
        orders = task_orders(9, 18)
        for position in range(9):
            tasks_at_position = [order[position] for order in orders]
            for task in range(9):
                assert tasks_at_position.count(task) == 2

    def test_more_participants_cycle(self):
        orders = task_orders(9, 20)
        assert len(orders) == 20
        assert orders[18] == orders[0]
