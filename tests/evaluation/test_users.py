"""Unit tests for the simulated participants."""

from repro.evaluation.tasks import TASKS
from repro.evaluation.users import Participant, make_participants


class TestCohort:
    def test_deterministic(self):
        first = make_participants(5, seed=1)
        second = make_participants(5, seed=1)
        assert [p.skill for p in first] == [p.skill for p in second]

    def test_seed_changes_cohort(self):
        first = make_participants(5, seed=1)
        second = make_participants(5, seed=2)
        assert [p.skill for p in first] != [p.skill for p in second]

    def test_skill_in_range(self):
        for participant in make_participants(20, seed=3):
            assert 0.0 <= participant.skill <= 1.0


class TestPhrasingChoice:
    def test_feedback_teaches(self):
        """After error feedback, good phrasings are chosen more often."""
        task = TASKS[0]

        def good_rate(had_feedback):
            hits = 0
            for seed in range(300):
                participant = Participant(1, seed)
                phrasing = participant.choose_phrasing(
                    task, 2, [], had_feedback, False
                )
                if phrasing.valid and phrasing.specified and phrasing.parsed:
                    hits += 1
            return hits / 300

        assert good_rate(True) > good_rate(False)

    def test_tried_phrasings_not_repeated(self):
        task = TASKS[0]
        participant = Participant(1, 7)
        tried = list(task.phrasings[:-1])
        for _ in range(20):
            choice = participant.choose_phrasing(task, 2, tried, True, False)
            assert choice is task.phrasings[-1]

    def test_keyword_queries_advance(self):
        task = TASKS[0]
        participant = Participant(1, 7)
        assert participant.choose_keyword_query(task, 1) == task.keyword_queries[0]
        assert participant.choose_keyword_query(task, 2) == task.keyword_queries[-1]
        # Attempts past the pool stay on the last query.
        assert participant.choose_keyword_query(task, 9) == task.keyword_queries[-1]


class TestTiming:
    def test_first_attempt_floor(self):
        """The paper observes a ~50 s floor for the first attempt."""
        for seed in range(50):
            participant = Participant(1, seed)
            assert participant.attempt_seconds(1, "Return every book.") >= 47.0

    def test_revisions_faster(self):
        participant = Participant(1, 11)
        sentence = "Return the title of every book."
        first = sum(participant.attempt_seconds(1, sentence) for _ in range(30))
        later = sum(participant.attempt_seconds(2, sentence) for _ in range(30))
        assert later < first


class TestStoppingRule:
    def test_below_threshold_never_satisfied(self):
        participant = Participant(1, 13)
        assert not participant.satisfied(0.4, 0.5)

    def test_high_score_always_satisfied(self):
        participant = Participant(1, 13)
        assert participant.satisfied(0.99, 0.5)

    def test_middling_score_sometimes_revised(self):
        decisions = set()
        for seed in range(200):
            participant = Participant(1, seed)
            decisions.add(participant.satisfied(0.6, 0.5))
        assert decisions == {True, False}
