"""Property-based tests for the evaluation metrics."""

from hypothesis import given, settings, strategies as st

from repro.evaluation.metrics import harmonic_mean, precision_recall

_atoms = st.one_of(
    st.integers(min_value=0, max_value=9),
    st.sampled_from(["a", "b", "c", "d"]),
)
_sequences = st.lists(_atoms, max_size=10)


@given(_sequences, _sequences)
@settings(max_examples=150)
def test_precision_recall_bounded(returned, gold):
    precision, recall = precision_recall(returned, gold)
    assert 0.0 <= precision <= 1.0
    assert 0.0 <= recall <= 1.0


@given(_sequences)
@settings(max_examples=100)
def test_identical_sequences_are_perfect(items):
    assert precision_recall(items, items) == (1.0, 1.0)


@given(
    _sequences.filter(bool),
    _sequences.filter(bool),
)
@settings(max_examples=150)
def test_swapping_swaps_precision_and_recall(returned, gold):
    """Symmetry holds whenever both sides are non-empty (the empty edges
    use the study's deliberate (0, 0)-for-empty-results convention)."""
    precision, recall = precision_recall(returned, gold)
    swapped_precision, swapped_recall = precision_recall(gold, returned)
    assert precision == swapped_recall
    assert recall == swapped_precision


@given(_sequences, _sequences)
@settings(max_examples=100)
def test_ordered_never_beats_unordered(returned, gold):
    """Order-sensitive matching (LCS) can only lose matches."""
    precision, recall = precision_recall(returned, gold)
    ordered_precision, ordered_recall = precision_recall(
        returned, gold, ordered=True
    )
    assert ordered_precision <= precision + 1e-12
    assert ordered_recall <= recall + 1e-12


@given(st.floats(0, 1), st.floats(0, 1))
@settings(max_examples=150)
def test_harmonic_mean_properties(precision, recall):
    mean = harmonic_mean(precision, recall)
    assert 0.0 <= mean <= 1.0
    assert mean <= max(precision, recall) + 1e-12
    assert mean >= 0.0 if min(precision, recall) == 0 else mean >= 0.0
    if precision == recall:
        assert abs(mean - precision) < 1e-12


@given(st.floats(0.01, 1), st.floats(0.01, 1))
@settings(max_examples=100)
def test_harmonic_mean_below_arithmetic(precision, recall):
    mean = harmonic_mean(precision, recall)
    assert mean <= (precision + recall) / 2 + 1e-12
