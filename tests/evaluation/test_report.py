"""Unit tests for report aggregation, on hand-built study results."""

import pytest

from repro.evaluation.report import StudyReport
from repro.evaluation.study import StudyConfig, StudyResults, TaskRecord
from repro.evaluation.tasks import TASKS


def record(participant, task_id, system, precision, recall, iterations=0,
           seconds=60.0, specified=True, parsed=True, accepted=True):
    rec = TaskRecord(participant, task_id, system)
    rec.precision = precision
    rec.recall = recall
    rec.iterations = iterations
    rec.seconds = seconds
    rec.specified_correctly = specified
    rec.parsed_correctly = parsed
    rec.accepted = accepted
    return rec


@pytest.fixture()
def results():
    built = StudyResults(StudyConfig(participants=2))
    for participant in (1, 2):
        for task in TASKS:
            built.records.append(
                record(participant, task.task_id, "nalix", 0.9, 1.0,
                       iterations=participant - 1,
                       seconds=50.0 + participant * 10)
            )
            built.records.append(
                record(participant, task.task_id, "keyword", 0.3, 0.5)
            )
    return built


class TestFigure11:
    def test_averages(self, results):
        rows = StudyReport(results).figure11()
        for row in rows.values():
            assert row["avg_seconds"] == pytest.approx(65.0)
            assert row["avg_iterations"] == pytest.approx(0.5)
            assert row["max_iterations"] == 1
            assert row["min_iterations"] == 0


class TestFigure12:
    def test_per_system_means(self, results):
        rows = StudyReport(results).figure12()
        for row in rows.values():
            assert row["nalix_precision"] == pytest.approx(0.9)
            assert row["nalix_recall"] == pytest.approx(1.0)
            assert row["keyword_precision"] == pytest.approx(0.3)
            assert row["keyword_recall"] == pytest.approx(0.5)


class TestTable7:
    def test_subsets(self, results):
        # Mark one record mis-specified and one mis-parsed.
        nalix_records = results.by_system("nalix")
        nalix_records[0].specified_correctly = False
        nalix_records[1].parsed_correctly = False
        table = StudyReport(results).table7()
        assert table["all queries"]["total_queries"] == 18
        assert table["all queries specified correctly"]["total_queries"] == 17
        assert (
            table["all queries specified and parsed correctly"][
                "total_queries"
            ]
            == 16
        )

    def test_unaccepted_records_excluded(self, results):
        nalix_records = results.by_system("nalix")
        nalix_records[0].accepted = False
        table = StudyReport(results).table7()
        assert table["all queries"]["total_queries"] == 17


class TestRendering:
    def test_figure11_layout(self, results):
        text = StudyReport(results).render_figure11()
        assert text.splitlines()[0].startswith("Figure 11")
        assert len(text.splitlines()) == 2 + 9

    def test_table7_percentages(self, results):
        text = StudyReport(results).render_table7()
        assert "90.0%" in text
        assert "100.0%" in text
