"""Unit tests for the document store."""

import pytest

from repro.database.store import Database
from repro.xmlstore.parser import parse_document


class TestLoading:
    def test_load_text(self):
        database = Database()
        database.load_text("<a><b>x</b></a>", name="t")
        assert database.has_tag("b")

    def test_load_document(self):
        database = Database()
        database.load_document(parse_document("<a/>", name="d"))
        assert "d" in database.documents

    def test_load_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>x</b></a>", encoding="utf-8")
        database = Database()
        database.load_file(path)
        assert database.has_tag("b")

    def test_load_rejects_non_document(self):
        database = Database()
        with pytest.raises(TypeError):
            database.load_document("<a/>")

    def test_indexes_rebuilt_on_second_load(self):
        database = Database()
        database.load_text("<a><b>x</b></a>", name="one")
        database.load_text("<c><d>y</d></c>", name="two")
        assert database.has_tag("b")
        assert database.has_tag("d")


class TestLookup:
    def test_single_document_default(self):
        database = Database()
        database.load_text("<a/>", name="only")
        assert database.document().name == "only"

    def test_named_document(self):
        database = Database()
        database.load_text("<a/>", name="one")
        database.load_text("<b/>", name="two")
        assert database.document("two").root.tag == "b"

    def test_ambiguous_document_raises(self):
        database = Database()
        database.load_text("<a/>", name="one")
        database.load_text("<b/>", name="two")
        with pytest.raises(KeyError):
            database.document()

    def test_unknown_name_raises(self):
        database = Database()
        database.load_text("<a/>", name="one")
        with pytest.raises(KeyError):
            database.document("nope")

    def test_nodes_with_tag(self, movie_database):
        assert len(movie_database.nodes_with_tag("movie")) == 5
        assert movie_database.nodes_with_tag("nothing") == []

    def test_nodes_with_value_exact(self, movie_database):
        nodes = movie_database.nodes_with_value("Traffic")
        assert [node.tag for node in nodes] == ["title"]

    def test_nodes_with_value_phrase_fallback(self, movie_database):
        nodes = movie_database.nodes_with_value("Grinch Stole")
        assert len(nodes) == 1

    def test_node_count(self, movie_database):
        assert movie_database.node_count() == 30
