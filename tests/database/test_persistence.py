"""Unit tests for database save/load."""

from repro.data import movies_document
from repro.database.persistence import load_database, save_database
from repro.database.store import Database
from repro.xmlstore.serializer import serialize


class TestRoundTrip:
    def test_single_document(self, tmp_path):
        database = Database()
        database.load_document(movies_document())
        save_database(database, tmp_path)

        loaded = load_database(tmp_path)
        assert set(loaded.documents) == {"movie.xml"}
        assert serialize(loaded.document().root) == serialize(
            database.document().root
        )

    def test_multiple_documents(self, tmp_path):
        database = Database()
        database.load_text("<a><x>1</x></a>", name="one.xml")
        database.load_text("<b><y>2</y></b>", name="two.xml")
        save_database(database, tmp_path)
        loaded = load_database(tmp_path)
        assert set(loaded.documents) == {"one.xml", "two.xml"}
        assert loaded.has_tag("x")
        assert loaded.has_tag("y")

    def test_queries_work_after_reload(self, tmp_path):
        from repro.xquery.evaluator import evaluate_query

        database = Database()
        database.load_document(movies_document())
        save_database(database, tmp_path)
        loaded = load_database(tmp_path)
        result = evaluate_query(
            loaded,
            'for $m in doc("movie.xml")//movie, $d in doc("movie.xml")'
            '//director where mqf($m, $d) and $d = "Ron Howard" '
            "return $m/title",
        )
        assert len(result) == 3


class TestFilenames:
    def test_unsafe_names_sanitised(self, tmp_path):
        database = Database()
        database.load_text("<a/>", name="weird name/with:stuff")
        manifest = save_database(database, tmp_path)
        filename, original = manifest[0]
        assert "/" not in filename
        assert original == "weird name/with:stuff"
        loaded = load_database(tmp_path)
        assert "weird name/with:stuff" in loaded.documents

    def test_collision_suffixes(self, tmp_path):
        database = Database()
        database.load_text("<a/>", name="doc one")
        database.load_text("<b/>", name="doc:one")
        manifest = save_database(database, tmp_path)
        filenames = [filename for filename, _ in manifest]
        assert len(set(filenames)) == 2

    def test_directory_without_manifest(self, tmp_path):
        (tmp_path / "plain.xml").write_text("<r><c>x</c></r>", encoding="utf-8")
        loaded = load_database(tmp_path)
        assert loaded.has_tag("c")
