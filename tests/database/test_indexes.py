"""Unit tests for tag and value indexes."""

from repro.database.indexes import build_indexes, direct_text, tokenize_value
from repro.xmlstore.parser import parse_document


def sample_document():
    return parse_document(
        """
        <bib>
          <book year="1994"><title>TCP/IP Illustrated</title>
            <author>Walter Stevens</author></book>
          <book year="2000"><title>Data on the Web</title>
            <author>Dan Suciu</author></book>
        </bib>
        """,
        name="bib",
    )


class TestTokenize:
    def test_simple_words(self):
        assert tokenize_value("Data on the Web") == ["data", "on", "the", "web"]

    def test_hyphen_and_apostrophe_kept(self):
        assert tokenize_value("Addison-Wesley O'Reilly") == [
            "addison-wesley",
            "o'reilly",
        ]

    def test_numbers(self):
        assert tokenize_value("year 1994!") == ["year", "1994"]

    def test_empty(self):
        assert tokenize_value("   ") == []


class TestDirectText:
    def test_element_direct_text_excludes_children(self):
        document = sample_document()
        book = document.root.child_elements("book")[0]
        assert direct_text(book) == ""
        title = book.child_elements("title")[0]
        assert direct_text(title) == "TCP/IP Illustrated"

    def test_attribute_direct_text(self):
        document = sample_document()
        book = document.root.child_elements("book")[0]
        assert direct_text(book.attributes[0]) == "1994"


class TestTagIndex:
    def test_counts(self):
        tag_index, _ = build_indexes([sample_document()])
        assert tag_index.count("book") == 2
        assert tag_index.count("title") == 2
        assert tag_index.count("missing") == 0

    def test_attribute_tags_indexed(self):
        tag_index, _ = build_indexes([sample_document()])
        assert tag_index.count("@year") == 2
        assert "@year" in tag_index

    def test_nodes_sorted_preorder(self):
        tag_index, _ = build_indexes([sample_document()])
        ids = [node.node_id for node in tag_index.nodes("title")]
        assert ids == sorted(ids)

    def test_tags_listing(self):
        tag_index, _ = build_indexes([sample_document()])
        assert "book" in tag_index.tags()
        assert "@year" in tag_index.tags()


class TestValueIndex:
    def test_term_lookup_case_insensitive(self):
        _, value_index = build_indexes([sample_document()])
        assert len(value_index.nodes_with_term("SUCIU")) == 1

    def test_exact_value(self):
        _, value_index = build_indexes([sample_document()])
        nodes = value_index.nodes_with_exact_value("Data on the Web")
        assert len(nodes) == 1
        assert nodes[0].tag == "title"

    def test_exact_value_trims_and_lowercases(self):
        _, value_index = build_indexes([sample_document()])
        assert value_index.nodes_with_exact_value("  data on the web ")

    def test_phrase_lookup(self):
        _, value_index = build_indexes([sample_document()])
        assert len(value_index.nodes_with_phrase("on the Web")) == 1
        assert value_index.nodes_with_phrase("web the on") == []

    def test_attribute_values_indexed(self):
        _, value_index = build_indexes([sample_document()])
        nodes = value_index.nodes_with_exact_value("1994")
        assert [node.tag for node in nodes] == ["@year"]

    def test_missing_term(self):
        _, value_index = build_indexes([sample_document()])
        assert value_index.nodes_with_term("zebra") == []
        assert "zebra" not in value_index
