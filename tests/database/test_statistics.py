"""Unit tests for database statistics."""

from repro.database.store import Database


def make_database():
    database = Database()
    database.load_text(
        '<bib><book year="1994"><title>X</title></book>'
        "<article><title>Y</title></article></bib>",
        name="bib",
    )
    return database


class TestStatistics:
    def test_tag_counts(self):
        stats = make_database().statistics
        assert stats.tag_counts["book"] == 1
        assert stats.tag_counts["title"] == 2

    def test_attribute_counted(self):
        stats = make_database().statistics
        assert stats.tag_counts["@year"] == 1

    def test_parent_tags(self):
        stats = make_database().statistics
        assert stats.parent_tags("title") == ["article", "book"]
        assert stats.parent_tags("@year") == ["book"]
        assert stats.parent_tags("bib") == []

    def test_child_tags(self):
        stats = make_database().statistics
        assert "title" in stats.child_tags("book")
        assert "@year" in stats.child_tags("book")

    def test_summary(self):
        stats = make_database().statistics
        summary = stats.summary()
        assert summary["documents"] == 1
        assert summary["distinct_tags"] == len(stats.tags())
        assert summary["nodes"] > 5

    def test_has_tag(self):
        stats = make_database().statistics
        assert stats.has_tag("book")
        assert not stats.has_tag("movie")
