"""Unit tests for the XQuery lexer."""

import pytest

from repro.xquery.errors import XQueryParseError
from repro.xquery.lexer import tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)][:-1]  # drop eof


def texts(text):
    return [token.text for token in tokenize(text)][:-1]


class TestTokenKinds:
    def test_keywords(self):
        assert kinds("for let where return in") == ["keyword"] * 5

    def test_variables(self):
        assert kinds("$v1 $vars2") == ["var", "var"]

    def test_strings(self):
        assert kinds('"hello world"') == ["string"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize('"say ""hi"""')
        assert tokens[0].text == '"say ""hi"""'

    def test_numbers(self):
        assert kinds("42 3.14") == ["number", "number"]

    def test_names(self):
        assert kinds("title booktitle distinct-values") == ["name"] * 3

    def test_symbols(self):
        assert texts(":= != <= >= // / @ | ( ) { } , = < > *") == [
            ":=", "!=", "<=", ">=", "//", "/", "@", "|", "(", ")",
            "{", "}", ",", "=", "<", ">", "*",
        ]

    def test_path_expression(self):
        assert texts('doc("m")//movie/title') == [
            "doc", "(", '"m"', ")", "//", "movie", "/", "title",
        ]

    def test_whitespace_ignored(self):
        assert kinds("  for\n\t$v  ") == ["keyword", "var"]

    def test_eof_token(self):
        tokens = tokenize("$v")
        assert tokens[-1].kind == "eof"

    def test_positions(self):
        tokens = tokenize("for $v")
        assert tokens[0].position == 0
        assert tokens[1].position == 4


class TestLexerErrors:
    @pytest.mark.parametrize("text", ["#", "`", "$"])
    def test_junk_raises(self, text):
        with pytest.raises(XQueryParseError):
            tokenize(text)
