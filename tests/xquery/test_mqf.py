"""Unit tests for the MQF / MLCAS structural machinery.

The ground truth throughout is the paper's Sec. 2 example: in the
Figure 1 movie database, ``mqf(director, title)`` must pair each title
with the director *of the same movie*, never with a director of a
different movie, and never through the document root.
"""

from repro.data import movies_document
from repro.xquery.mqf import (
    CandidateSet,
    anchor,
    meaningful_pairs,
    meaningfully_related,
    mqf_join,
    mqf_predicate,
)


def nodes_by_tag(document, tag):
    return [node for node in document.iter_elements() if node.tag == tag]


class TestAnchor:
    def test_anchor_of_title_among_directors_is_movie(self):
        document = movies_document()
        titles = nodes_by_tag(document, "title")
        directors = CandidateSet(nodes_by_tag(document, "director"))
        for title in titles:
            anchored = anchor(title, directors)
            assert anchored.tag == "movie"
            assert anchored is title.parent

    def test_anchor_empty_set_is_none(self):
        document = movies_document()
        title = nodes_by_tag(document, "title")[0]
        assert anchor(title, CandidateSet([])) is None

    def test_anchor_excludes_self(self):
        document = movies_document()
        titles = nodes_by_tag(document, "title")
        candidates = CandidateSet(titles)
        anchored = anchor(titles[0], candidates)
        # Nearest other title shares only the year (or root) ancestor.
        assert anchored.tag in ("year", "movies")


class TestPairwiseMeaningfulness:
    def test_same_movie_pair_is_meaningful(self):
        document = movies_document()
        titles = CandidateSet(nodes_by_tag(document, "title"))
        directors = CandidateSet(nodes_by_tag(document, "director"))
        for movie in nodes_by_tag(document, "movie"):
            title = movie.child_elements("title")[0]
            director = movie.child_elements("director")[0]
            assert meaningfully_related(title, director, titles, directors)

    def test_cross_movie_pair_is_not_meaningful(self):
        document = movies_document()
        titles = CandidateSet(nodes_by_tag(document, "title"))
        directors = CandidateSet(nodes_by_tag(document, "director"))
        movies = nodes_by_tag(document, "movie")
        title = movies[0].child_elements("title")[0]
        director = movies[1].child_elements("director")[0]
        assert not meaningfully_related(title, director, titles, directors)

    def test_node_with_itself_is_meaningful(self):
        document = movies_document()
        titles = CandidateSet(nodes_by_tag(document, "title"))
        title = nodes_by_tag(document, "title")[0]
        assert meaningfully_related(title, title, titles, titles)

    def test_ancestor_descendant_is_meaningful(self):
        document = movies_document()
        movies = CandidateSet(nodes_by_tag(document, "movie"))
        titles = CandidateSet(nodes_by_tag(document, "title"))
        movie = nodes_by_tag(document, "movie")[0]
        title = movie.child_elements("title")[0]
        assert meaningfully_related(movie, title, movies, titles)


class TestMeaningfulPairs:
    def test_title_director_pairs_match_movies(self):
        document = movies_document()
        titles = CandidateSet(nodes_by_tag(document, "title"))
        directors = CandidateSet(nodes_by_tag(document, "director"))
        pairs = meaningful_pairs(titles, directors)
        assert len(pairs) == 5
        for title, director in pairs:
            assert title.parent is director.parent

    def test_pairs_agree_with_predicate(self):
        document = movies_document()
        titles = CandidateSet(nodes_by_tag(document, "title"))
        directors = CandidateSet(nodes_by_tag(document, "director"))
        pairs = {
            (title.node_id, director.node_id)
            for title, director in meaningful_pairs(titles, directors)
        }
        brute = {
            (title.node_id, director.node_id)
            for title in titles
            for director in directors
            if meaningfully_related(title, director, titles, directors)
        }
        assert pairs == brute

    def test_population_distinct_from_candidates(self):
        """Filtering candidates must not change who the competitors are."""
        document = movies_document()
        all_directors = nodes_by_tag(document, "director")
        ron = [d for d in all_directors if d.string_value() == "Ron Howard"]
        movies = nodes_by_tag(document, "movie")
        pairs = meaningful_pairs(
            CandidateSet(movies),
            CandidateSet(ron),
            CandidateSet(movies),
            CandidateSet(all_directors),
        )
        # Exactly Ron Howard's three movies.
        assert len(pairs) == 3
        for movie, director in pairs:
            assert director.parent is movie

    def test_without_population_filtering_overmatches(self):
        """Using filtered candidate sets as the competitor populations is
        wrong: with both sides filtered to nodes from *different* movies,
        their anchors collapse to the root and the pair spuriously
        becomes "meaningful". This is why the planner passes the
        unfiltered populations explicitly."""
        from repro.xmlstore.parser import parse_document

        document = parse_document(
            "<db><m><d>A</d><t>T1</t></m><m><d>B</d><t>T2</t></m></db>"
        )
        directors = [n for n in document.iter_elements() if n.tag == "d"]
        titles = [n for n in document.iter_elements() if n.tag == "t"]
        director_a = [directors[0]]  # belongs to the first movie
        title_2 = [titles[1]]        # belongs to the second movie

        honest = meaningful_pairs(
            CandidateSet(title_2),
            CandidateSet(director_a),
            CandidateSet(titles),
            CandidateSet(directors),
        )
        assert honest == []

        cheating = meaningful_pairs(
            CandidateSet(title_2), CandidateSet(director_a)
        )
        assert len(cheating) == 1


class TestMultiwayJoin:
    def test_three_way_join(self):
        document = movies_document()
        titles = nodes_by_tag(document, "title")
        directors = nodes_by_tag(document, "director")
        movies = nodes_by_tag(document, "movie")
        tuples = mqf_join([titles, movies, directors])
        assert len(tuples) == 5
        for title, movie, director in tuples:
            assert title.parent is movie
            assert director.parent is movie

    def test_single_set(self):
        document = movies_document()
        titles = nodes_by_tag(document, "title")
        assert mqf_join([titles]) == [(t,) for t in titles]

    def test_empty_input(self):
        assert mqf_join([]) == []
        assert mqf_join([[], []]) == []

    def test_predicate_form(self):
        document = movies_document()
        titles = nodes_by_tag(document, "title")
        directors = nodes_by_tag(document, "director")
        title_set = CandidateSet(titles)
        director_set = CandidateSet(directors)
        movie = nodes_by_tag(document, "movie")[0]
        good = [movie.child_elements("title")[0],
                movie.child_elements("director")[0]]
        assert mqf_predicate(good, [title_set, director_set])
        other = nodes_by_tag(document, "movie")[1]
        bad = [movie.child_elements("title")[0],
               other.child_elements("director")[0]]
        assert not mqf_predicate(bad, [title_set, director_set])
