"""Tests for the naive (reference-semantics) evaluation path and the
clause shapes only it handles."""

import pytest

from repro.xquery.evaluator import evaluate_query
from repro.xquery.values import string_value


@pytest.fixture(scope="module")
def db(bib_database):
    return bib_database


class TestNaivePath:
    def test_let_before_for(self, db):
        """Not plannable (let precedes for): naive path must handle it."""
        result = evaluate_query(
            db,
            'let $limit := 40 for $b in doc("bib.xml")//book, '
            '$p in doc("bib.xml")//price where mqf($b, $p) and $p < $limit '
            "return $b/title",
        )
        assert [string_value(n) for n in result] == ["Data on the Web"]

    def test_let_only_flwor(self, db):
        result = evaluate_query(
            db,
            'let $titles := { for $t in doc("bib.xml")//title return $t } '
            "return count($titles)",
        )
        assert result == [4]

    def test_dependent_for_bindings(self, db):
        """The second binding ranges over the first's subtree."""
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book, $a in $b//author '
            "return $a/last",
            use_planner=False,
        )
        # 1 + 1 + 3 authors; the fourth book has only an editor.
        assert len(result) == 5

    def test_dependent_bindings_with_planner_enabled(self, db):
        """The planner claims this FLWOR; results must still be right
        (the source referencing $b is evaluated per environment)."""
        planned = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book, $a in $b//author '
            "return $a/last",
            use_planner=True,
        )
        naive = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book, $a in $b//author '
            "return $a/last",
            use_planner=False,
        )
        assert sorted(map(string_value, planned)) == sorted(
            map(string_value, naive)
        )

    def test_where_before_order_by(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where $b/@year > 1992 '
            "order by $b/title return $b/title",
            use_planner=False,
        )
        titles = [string_value(n) for n in result]
        assert titles == sorted(titles, key=str.casefold)
        assert len(titles) == 3

    def test_naive_mqf_predicate(self, db):
        result = evaluate_query(
            db,
            'for $t in doc("bib.xml")//title, $p in doc("bib.xml")//price '
            "where mqf($t, $p) return $t",
            use_planner=False,
        )
        assert len(result) == 4
