"""Unit tests for the built-in function library."""

import pytest

from repro.xmlstore.model import ElementNode, TextNode
from repro.xquery.errors import XQueryEvaluationError, XQueryTypeError
from repro.xquery.functions import call_builtin, is_aggregate


def element(text):
    node = ElementNode("e")
    node.append(TextNode(str(text)))
    return node


class TestAggregates:
    def test_count(self):
        assert call_builtin("count", [[1, 2, 3]]) == [3]
        assert call_builtin("count", [[]]) == [0]

    def test_sum(self):
        assert call_builtin("sum", [[element(1), element(2)]]) == [3.0]
        assert call_builtin("sum", [[]]) == [0]

    def test_avg(self):
        assert call_builtin("avg", [[element(2), element(4)]]) == [3.0]
        assert call_builtin("avg", [[]]) == []

    def test_min_max_numeric(self):
        values = [[element(5), element(1), element(3)]]
        assert call_builtin("min", values) == [1.0]
        assert call_builtin("max", values) == [5.0]

    def test_min_max_strings(self):
        values = [[element("pear"), element("Apple")]]
        assert call_builtin("min", values) == ["apple"]
        assert call_builtin("max", values) == ["pear"]

    def test_min_empty(self):
        assert call_builtin("min", [[]]) == []

    def test_sum_rejects_non_numeric(self):
        with pytest.raises(XQueryTypeError):
            call_builtin("sum", [[element("abc")]])

    def test_is_aggregate(self):
        assert is_aggregate("count")
        assert is_aggregate("min")
        assert not is_aggregate("contains")


class TestPredicatesAndConversions:
    def test_empty_exists(self):
        assert call_builtin("empty", [[]]) == [True]
        assert call_builtin("exists", [[1]]) == [True]

    def test_string(self):
        assert call_builtin("string", [[element("x")]]) == ["x"]
        assert call_builtin("string", [[]]) == [""]

    def test_number(self):
        assert call_builtin("number", [[element("42")]]) == [42.0]

    def test_number_rejects_text(self):
        with pytest.raises(XQueryTypeError):
            call_builtin("number", [[element("abc")]])

    def test_distinct_values(self):
        values = [[element("A"), element("a"), element("b")]]
        assert call_builtin("distinct-values", values) == ["A", "b"]

    def test_contains(self):
        assert call_builtin(
            "contains", [[element("Data on the Web")], ["WEB"]]
        ) == [True]
        assert call_builtin(
            "contains", [[element("Data")], ["xml"]]
        ) == [False]

    def test_contains_empty_haystack(self):
        assert call_builtin("contains", [[], ["x"]]) == [False]


class TestDispatchErrors:
    def test_unknown_function(self):
        with pytest.raises(XQueryEvaluationError):
            call_builtin("frobnicate", [[]])

    def test_wrong_arity(self):
        with pytest.raises(XQueryEvaluationError):
            call_builtin("count", [[], []])
        with pytest.raises(XQueryEvaluationError):
            call_builtin("contains", [[]])


class TestStringFunctions:
    def test_starts_with(self):
        assert call_builtin(
            "starts-with", [[element("Data on the Web")], ["data"]]
        ) == [True]
        assert call_builtin(
            "starts-with", [[element("Data")], ["Web"]]
        ) == [False]

    def test_ends_with(self):
        assert call_builtin(
            "ends-with", [[element("Data on the Web")], ["WEB"]]
        ) == [True]

    def test_string_length(self):
        assert call_builtin("string-length", [[element("abc")]]) == [3]
        assert call_builtin("string-length", [[]]) == [0]

    def test_concat(self):
        assert call_builtin(
            "concat", [[element("a")], [element("b")], [element("c")]]
        ) == ["abc"]

    def test_concat_arity(self):
        with pytest.raises(XQueryEvaluationError):
            call_builtin("concat", [[element("a")]])

    def test_concat_empty_argument(self):
        assert call_builtin("concat", [[element("a")], []]) == ["a"]
