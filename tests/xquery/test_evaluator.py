"""Unit/integration tests for the XQuery evaluator (planned path)."""

import pytest

from repro.xquery.errors import XQueryEvaluationError
from repro.xquery.evaluator import evaluate_query
from repro.xquery.values import string_value


def values(items):
    return [string_value(item) for item in items]


@pytest.fixture(scope="module")
def db(bib_database):
    return bib_database


class TestPaths:
    def test_descendant_scan(self, db):
        result = evaluate_query(db, 'for $t in doc("bib.xml")//title return $t')
        assert len(result) == 4

    def test_child_step_from_variable(self, db):
        result = evaluate_query(
            db, 'for $b in doc("bib.xml")//book return $b/title'
        )
        assert len(result) == 4

    def test_attribute_step(self, db):
        result = evaluate_query(
            db, 'for $b in doc("bib.xml")//book return $b/@year'
        )
        assert sorted(values(result)) == ["1992", "1994", "1999", "2000"]

    def test_descendant_from_variable(self, db):
        result = evaluate_query(
            db, 'for $b in doc("bib.xml")//book return $b//last'
        )
        assert len(result) == 6

    def test_root_included_in_descendant_scan(self, db):
        result = evaluate_query(db, 'for $r in doc("bib.xml")//bib return $r')
        assert len(result) == 1

    def test_star_scan(self, db):
        result = evaluate_query(db, 'for $e in doc("bib.xml")//* return $e')
        assert len(result) == len(list(db.document().iter_elements()))

    def test_missing_tag_empty(self, db):
        assert evaluate_query(db, 'for $x in doc("bib.xml")//zebra return $x') == []

    def test_unknown_document_falls_back_to_single(self, db):
        result = evaluate_query(db, 'for $t in doc("other.xml")//title return $t')
        assert len(result) == 4


class TestWhere:
    def test_value_predicate(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where $b/publisher = '
            '"Addison-Wesley" return $b/title',
        )
        assert len(result) == 2

    def test_numeric_predicate_on_attribute(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where $b/@year > 1993 '
            "return $b/title",
        )
        assert len(result) == 3

    def test_conjunction(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where $b/@year > 1993 and '
            '$b/publisher = "Addison-Wesley" return $b/title',
        )
        assert values(result) == ["TCP/IP Illustrated"]

    def test_disjunction(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where $b/@year = 1992 or '
            "$b/@year = 1994 return $b/title",
        )
        assert len(result) == 2

    def test_negation(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where not($b/publisher = '
            '"Addison-Wesley") return $b/title',
        )
        assert len(result) == 2

    def test_contains(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where contains($b/title, "web") '
            "return $b/title",
        )
        assert values(result) == ["Data on the Web"]

    def test_value_join(self, db):
        result = evaluate_query(
            db,
            'for $a in doc("bib.xml")//book, $b in doc("bib.xml")//book '
            "where $a/price = $b/price and $a/@year != $b/@year "
            "return $a/title",
        )
        # The two Stevens books share a price.
        assert len(result) == 2


class TestMqfInQueries:
    def test_mqf_relates_book_parts(self, db):
        result = evaluate_query(
            db,
            'for $t in doc("bib.xml")//title, $p in doc("bib.xml")//price '
            'where mqf($t, $p) and $p < 40 return $t',
        )
        assert values(result) == ["Data on the Web"]

    def test_mqf_three_way(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book, $t in doc("bib.xml")//title, '
            '$p in doc("bib.xml")//publisher where mqf($b, $t, $p) and '
            '$p = "Addison-Wesley" return $t',
        )
        assert len(result) == 2


class TestLetAndAggregates:
    def test_global_aggregate(self, db):
        result = evaluate_query(
            db,
            'let $prices := { for $p in doc("bib.xml")//price return $p } '
            "return count($prices)",
        )
        assert result == [4]

    def test_aggregate_comparison(self, db):
        result = evaluate_query(
            db,
            'let $prices := { for $p in doc("bib.xml")//price return $p } '
            'for $b in doc("bib.xml")//book, $p in doc("bib.xml")//price '
            "where mqf($b, $p) and $p = max($prices) return $b/title",
        )
        assert values(result) == [
            "The Economics of Technology and Content for Digital TV"
        ]

    def test_let_over_outer_variable(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book '
            "let $authors := { for $a in $b//author return $a } "
            "where count($authors) >= 3 return $b/title",
        )
        assert values(result) == ["Data on the Web"]


class TestQuantifiersOrderingConstruction:
    def test_some_quantifier(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where some $a in $b//author '
            'satisfies ($a/last = "Suciu") return $b/title',
        )
        assert values(result) == ["Data on the Web"]

    def test_every_quantifier(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where every $a in $b//author '
            'satisfies ($a/last = "Stevens") return $b/title',
        )
        # Books with no author satisfy 'every' vacuously.
        assert len(result) == 3

    def test_order_by_ascending(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book order by $b/title return $b/title',
        )
        texts = values(result)
        assert texts == sorted(texts, key=str.casefold)

    def test_order_by_descending(self, db):
        result = evaluate_query(
            db,
            'for $p in doc("bib.xml")//price order by $p descending return $p',
        )
        numbers = [float(v) for v in values(result)]
        assert numbers == sorted(numbers, reverse=True)

    def test_element_constructor(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where $b/@year = 2000 '
            "return <result>{ $b/title }</result>",
        )
        assert len(result) == 1
        assert result[0].tag == "result"
        assert result[0].string_value() == "Data on the Web"

    def test_sequence_return(self, db):
        result = evaluate_query(
            db,
            'for $b in doc("bib.xml")//book where $b/@year = 2000 '
            "return ($b/title, $b/publisher)",
        )
        assert values(result) == ["Data on the Web",
                                  "Morgan Kaufmann Publishers"]


class TestErrors:
    def test_unbound_variable(self, db):
        with pytest.raises(XQueryEvaluationError):
            evaluate_query(db, 'for $a in doc("bib.xml")//book return $other')

    def test_mqf_requires_variables(self, db):
        with pytest.raises(XQueryEvaluationError):
            evaluate_query(
                db,
                'for $a in doc("bib.xml")//book where mqf($a, doc("bib.xml")'
                "//title) return $a",
            )
