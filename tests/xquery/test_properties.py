"""Property-based tests for the query engine.

The central invariant: for every query in the generated family, the
**planned** evaluation (index scans + MQF structural join) returns
exactly the same multiset of results as the **naive** nested-loop
reference semantics, on randomly generated movie-catalog documents.
"""

from hypothesis import given, settings, strategies as st

from repro.database.store import Database
from repro.xmlstore.model import Document, ElementNode
from repro.xquery.evaluator import evaluate_query
from repro.xquery.values import string_value

_titles = st.sampled_from(["T1", "T2", "T3", "T4", "T5"])
_directors = st.sampled_from(["Ann", "Bob", "Cho", "Dee"])
_years = st.sampled_from(["1999", "2000", "2001"])


@st.composite
def movie_documents(draw):
    """Random catalogs: year groups, movies with title+director, and
    occasionally nested double features (structure variety for mqf)."""
    root = ElementNode("movies")
    for year_text in draw(st.lists(_years, min_size=1, max_size=3)):
        year = root.append_element("year", year_text)
        for _ in range(draw(st.integers(0, 3))):
            movie = year.append_element("movie")
            movie.append_element("title", draw(_titles))
            movie.append_element("director", draw(_directors))
            if draw(st.booleans()):
                extra = movie.append_element("movie")
                extra.append_element("title", draw(_titles))
                extra.append_element("director", draw(_directors))
    return Document(root, name="m.xml")


QUERIES = [
    'for $t in doc("m.xml")//title return $t',
    'for $m in doc("m.xml")//movie, $d in doc("m.xml")//director '
    "where mqf($m, $d) return ($m/title, $d)",
    'for $t in doc("m.xml")//title, $d in doc("m.xml")//director '
    'where mqf($t, $d) and $d = "Ann" return $t',
    'for $y in doc("m.xml")//year, $m in doc("m.xml")//movie '
    "where mqf($y, $m) return $m/title",
    'for $m in doc("m.xml")//movie where $m/title = "T1" return $m/director',
    'for $d in doc("m.xml")//director '
    'let $vars := { for $d2 in doc("m.xml")//director, '
    '$m in doc("m.xml")//movie where mqf($m, $d2) and $d2 = $d return $m } '
    "where count($vars) >= 1 return $d",
    'for $t in doc("m.xml")//title order by $t return $t',
    'for $m in doc("m.xml")//movie where some $t in $m//title satisfies '
    '($t = "T1") return $m/director',
]


def _signature(items):
    return sorted(
        (string_value(item), getattr(item, "node_id", None)) for item in items
    )


@given(movie_documents(), st.sampled_from(QUERIES))
@settings(max_examples=80, deadline=None)
def test_planned_matches_naive(document, query):
    database = Database()
    database.load_document(document)
    planned = evaluate_query(database, query, use_planner=True)
    naive = evaluate_query(database, query, use_planner=False)
    assert _signature(planned) == _signature(naive)


@given(movie_documents())
@settings(max_examples=40, deadline=None)
def test_mqf_pairs_are_symmetric(document):
    """mqf($a,$b) and mqf($b,$a) return the same relation."""
    database = Database()
    database.load_document(document)
    forward = evaluate_query(
        database,
        'for $m in doc("m.xml")//movie, $d in doc("m.xml")//director '
        "where mqf($m, $d) return ($m, $d)",
    )
    backward = evaluate_query(
        database,
        'for $d in doc("m.xml")//director, $m in doc("m.xml")//movie '
        "where mqf($d, $m) return ($m, $d)",
    )
    assert _signature(forward) == _signature(backward)


@given(movie_documents())
@settings(max_examples=40, deadline=None)
def test_mqf_subset_of_cross_product(document):
    database = Database()
    database.load_document(document)
    joined = evaluate_query(
        database,
        'for $t in doc("m.xml")//title, $d in doc("m.xml")//director '
        "where mqf($t, $d) return ($t, $d)",
    )
    cross = evaluate_query(
        database,
        'for $t in doc("m.xml")//title, $d in doc("m.xml")//director '
        "return ($t, $d)",
    )
    joined_ids = {tuple(x.node_id for x in pair) for pair in zip(joined[::2], joined[1::2])}
    cross_ids = {tuple(x.node_id for x in pair) for pair in zip(cross[::2], cross[1::2])}
    assert joined_ids <= cross_ids
