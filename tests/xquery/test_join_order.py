"""Regression tests for MQF join ordering and let memoization.

The degenerate shape: two argument sets with the same label anchor each
other at the document root, so a naive left-to-right join materialises
their cross product before the selective constraints prune it. The
greedy ordering must keep intermediates small, and results must stay
identical to the reference semantics.
"""

import time

import pytest

from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database
from repro.xquery.evaluator import evaluate_query
from repro.xquery.plan import value_only_usage
from repro.xquery.parser import parse_xquery


@pytest.fixture(scope="module")
def mid_dblp():
    database = Database()
    database.load_document(generate_dblp(DblpConfig(books=200, articles=400)))
    return database


# Q1's shape: two year variables (explicit + implicit) in one mqf.
SAME_LABEL_QUERY = (
    'for $y1 in doc("dblp.xml")//year, $t in doc("dblp.xml")//title, '
    '$b in doc("dblp.xml")//book, $p in doc("dblp.xml")//publisher, '
    '$y2 in doc("dblp.xml")//year '
    'where mqf($y1, $t, $b, $p, $y2) and $p = "Addison-Wesley" and '
    "$y2 > 1991 return ($y1, $t)"
)


class TestJoinOrder:
    def test_same_label_join_fast_and_correct(self, mid_dblp):
        started = time.perf_counter()
        planned = evaluate_query(mid_dblp, SAME_LABEL_QUERY, use_planner=True)
        elapsed = time.perf_counter() - started
        assert elapsed < 3.0, "join ordering failed to avoid the blow-up"
        assert planned, "the query has answers on the anchored data"
        # Every returned pair belongs to one Addison-Wesley book.
        for year, title in zip(planned[::2], planned[1::2]):
            assert year.parent is title.parent

    def test_matches_naive_on_small_data(self):
        database = Database()
        database.load_document(generate_dblp(DblpConfig(books=8, articles=6)))
        query = SAME_LABEL_QUERY
        planned = evaluate_query(database, query, use_planner=True)
        naive = evaluate_query(database, query, use_planner=False)
        key = lambda items: sorted(node.node_id for node in items)
        assert key(planned) == key(naive)


class TestValueOnlyUsage:
    def _expr(self, text):
        return parse_xquery(text)

    def test_comparison_operand_is_value_only(self):
        expr = self._expr(
            'for $c in doc("d")//x where $c = $outer return $c'
        )
        assert value_only_usage(expr, "outer")

    def test_path_start_is_not(self):
        expr = self._expr("for $c in $outer//x return $c")
        assert not value_only_usage(expr, "outer")

    def test_return_is_not(self):
        expr = self._expr('for $c in doc("d")//x return $outer')
        assert not value_only_usage(expr, "outer")

    def test_mqf_argument_is_not(self):
        expr = self._expr(
            'for $c in doc("d")//x where mqf($c, $outer) return $c'
        )
        assert not value_only_usage(expr, "outer")

    def test_unreferenced_variable_is_trivially_value_only(self):
        expr = self._expr('for $c in doc("d")//x return $c')
        assert value_only_usage(expr, "outer")

    def test_mixed_usage_is_not(self):
        expr = self._expr(
            'for $c in doc("d")//x where $c = $outer return $outer'
        )
        assert not value_only_usage(expr, "outer")


class TestLetMemoization:
    def test_grouped_aggregate_scales(self, mid_dblp):
        query = (
            'for $p in doc("dblp.xml")//publisher '
            'let $vars := { for $p2 in doc("dblp.xml")//publisher, '
            '$b in doc("dblp.xml")//book where mqf($b, $p2) and $p2 = $p '
            "return $b } return count($vars)"
        )
        started = time.perf_counter()
        counts = evaluate_query(mid_dblp, query)
        elapsed = time.perf_counter() - started
        assert len(counts) == 200
        assert elapsed < 2.0

    def test_memoized_matches_naive(self):
        database = Database()
        database.load_document(generate_dblp(DblpConfig(books=12, articles=6)))
        query = (
            'for $p in doc("dblp.xml")//publisher '
            'let $vars := { for $p2 in doc("dblp.xml")//publisher, '
            '$b in doc("dblp.xml")//book where mqf($b, $p2) and $p2 = $p '
            "return $b } return count($vars)"
        )
        planned = evaluate_query(database, query, use_planner=True)
        naive = evaluate_query(database, query, use_planner=False)
        assert planned == naive
