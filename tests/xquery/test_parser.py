"""Unit tests for the XQuery parser and AST round-tripping."""

import pytest

from repro.xquery import ast
from repro.xquery.errors import XQueryParseError
from repro.xquery.parser import parse_xquery

ROUNDTRIP_QUERIES = [
    'for $v in doc("m")//movie return $v',
    'for $v in doc("m")//movie, $d in doc("m")//director where mqf($v, $d) '
    'return $v',
    'for $b in doc("bib")//book where $b/@year > 1991 return $b/title',
    'for $b in doc("bib")//book order by $b/title return $b',
    'for $b in doc("bib")//book order by $b/title descending return $b',
    'let $vars1 := { for $p in doc("bib")//price return $p } '
    'return avg($vars1)',
    'for $b in doc("bib")//book where some $a in $b//author satisfies '
    '($a = "X") return $b',
    'for $b in doc("bib")//book where not($b/title = "X") return $b',
    'for $t in doc("d")//(title|booktitle) return $t',
    'for $b in doc("bib")//book where $b/title = "X" and $b/@year = 1991 '
    'return ($b/title, $b/@year)',
    'for $b in doc("bib")//book where contains($b/title, "XML") return $b',
    'for $v1 in doc("m")//director let $vars1 := { for $v2 in doc("m")//movie '
    'where mqf($v2, $v1) return $v2 } where count($vars1) >= 2 return $v1',
]


class TestRoundTrip:
    @pytest.mark.parametrize("query", ROUNDTRIP_QUERIES)
    def test_text_roundtrip(self, query):
        parsed = parse_xquery(query)
        assert parse_xquery(parsed.to_text()) == parsed

    @pytest.mark.parametrize("query", ROUNDTRIP_QUERIES)
    def test_pretty_text_parses(self, query):
        parsed = parse_xquery(query)
        if isinstance(parsed, ast.FLWOR):
            assert parse_xquery(parsed.to_pretty_text()) == parsed


class TestStructure:
    def test_for_bindings(self):
        parsed = parse_xquery(
            'for $a in doc("d")//x, $b in doc("d")//y return $a'
        )
        assert [var for var, _ in parsed.for_bindings()] == ["a", "b"]

    def test_where_condition_flattens(self):
        parsed = parse_xquery(
            'for $a in doc("d")//x where $a = 1 and $a = 2 and $a = 3 '
            "return $a"
        )
        condition = parsed.where_condition()
        assert isinstance(condition, ast.And)
        assert len(condition.items) == 3

    def test_or_precedence(self):
        parsed = parse_xquery(
            'for $a in doc("d")//x where $a = 1 or $a = 2 and $a = 3 '
            "return $a"
        )
        condition = parsed.where_condition()
        assert isinstance(condition, ast.Or)
        assert isinstance(condition.items[1], ast.And)

    def test_nested_let_flwor(self):
        parsed = parse_xquery(
            'let $v := { for $x in doc("d")//y return $x } return count($v)'
        )
        let_clause = parsed.clauses[0]
        assert isinstance(let_clause, ast.LetClause)
        assert isinstance(let_clause.expr, ast.FLWOR)

    def test_path_steps(self):
        parsed = parse_xquery('for $a in doc("d")//x/y/@z return $a')
        path = parsed.for_bindings()[0][1]
        assert [step.axis for step in path.steps] == [
            ast.Step.DESCENDANT,
            ast.Step.CHILD,
            ast.Step.ATTRIBUTE,
        ]

    def test_alternation_tags(self):
        parsed = parse_xquery('for $a in doc("d")//(x|y) return $a')
        path = parsed.for_bindings()[0][1]
        assert path.steps[0].matches_tags() == {"x", "y"}

    def test_star_test(self):
        parsed = parse_xquery('for $a in doc("d")//* return $a')
        path = parsed.for_bindings()[0][1]
        assert path.steps[0].matches_tags() is None

    def test_not_function_becomes_not_node(self):
        parsed = parse_xquery('for $a in doc("d")//x where not($a = 1) return $a')
        assert isinstance(parsed.where_condition(), ast.Not)

    def test_element_constructor(self):
        parsed = parse_xquery(
            'for $a in doc("d")//x return <result>{ $a }</result>'
        )
        constructor = parsed.return_expr()
        assert isinstance(constructor, ast.ElementConstructor)
        assert constructor.tag == "result"

    def test_string_literal_unescaping(self):
        parsed = parse_xquery('for $a in doc("d")//x where $a = "a""b" return $a')
        assert parsed.where_condition().right.value == 'a"b'

    def test_numeric_literals(self):
        parsed = parse_xquery('for $a in doc("d")//x where $a = 3.5 return $a')
        assert parsed.where_condition().right.value == 3.5


class TestParserErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "",
            "for $a return $a",
            'for $a in doc("d")//x',
            'for $a in doc("d")//x return',
            'let $v = 1 return $v',
            'for $a in doc("d")//x where return $a',
            'for $a in doc("d")//x return $a extra',
            '<a>{ $v }</b>',
        ],
    )
    def test_bad_queries_raise(self, query):
        with pytest.raises(XQueryParseError):
            parse_xquery(query)

    def test_flwor_requires_return(self):
        with pytest.raises(ValueError):
            ast.FLWOR([ast.ForClause([("a", ast.Literal(1))])])
