"""Unit tests for AST construction, equality and serialization."""

from repro.xquery import ast
from repro.xquery.ast import doc_path


class TestLiterals:
    def test_string_quoting(self):
        assert ast.Literal("x").to_text() == '"x"'

    def test_embedded_quote_escaped(self):
        assert ast.Literal('a"b').to_text() == '"a""b"'

    def test_integer(self):
        assert ast.Literal(1991).to_text() == "1991"

    def test_whole_float_prints_as_int(self):
        assert ast.Literal(1991.0).to_text() == "1991"

    def test_fractional_float(self):
        assert ast.Literal(3.5).to_text() == "3.5"


class TestEquality:
    def test_structural_equality(self):
        first = ast.Comparison("=", ast.VarRef("a"), ast.Literal(1))
        second = ast.Comparison("=", ast.VarRef("a"), ast.Literal(1))
        assert first == second

    def test_inequality_of_different_ops(self):
        first = ast.Comparison("=", ast.VarRef("a"), ast.Literal(1))
        second = ast.Comparison("<", ast.VarRef("a"), ast.Literal(1))
        assert first != second

    def test_hashable(self):
        expr = ast.FunctionCall("count", [ast.VarRef("v")])
        assert {expr: 1}[expr] == 1


class TestRendering:
    def test_and_parenthesizes_nested_or(self):
        condition = ast.And(
            [
                ast.Or([ast.VarRef("a"), ast.VarRef("b")]),
                ast.VarRef("c"),
            ]
        )
        assert condition.to_text() == "($a or $b) and $c"

    def test_not_wraps(self):
        assert ast.Not(ast.VarRef("a")).to_text() == "not($a)"

    def test_quantified(self):
        expr = ast.Quantified(
            "some",
            "x",
            ast.VarRef("seq"),
            ast.Comparison("=", ast.VarRef("x"), ast.Literal(1)),
        )
        assert expr.to_text() == "some $x in $seq satisfies ($x = 1)"

    def test_element_constructor(self):
        expr = ast.ElementConstructor("result", [ast.VarRef("a")])
        assert expr.to_text() == "<result>{ $a }</result>"

    def test_alternation_step(self):
        step = ast.Step(ast.Step.DESCENDANT, "title|booktitle")
        assert step.to_text() == "//(title|booktitle)"

    def test_order_by_multiple_keys(self):
        clause = ast.OrderByClause(
            [(ast.VarRef("a"), False), (ast.VarRef("b"), True)]
        )
        assert clause.to_text() == "order by $a, $b descending"


class TestDocPath:
    def test_element_tag(self):
        assert doc_path("m.xml", "movie").to_text() == 'doc("m.xml")//movie'

    def test_attribute_tag(self):
        assert doc_path("m.xml", "@year").to_text() == 'doc("m.xml")//*/@year'

    def test_last_tag(self):
        assert doc_path("m", "movie").last_tag() == "movie"
        assert doc_path("m", "@year").last_tag() == "@year"


class TestFLWORHelpers:
    def test_for_bindings_across_clauses(self):
        flwor = ast.FLWOR(
            [
                ast.ForClause([("a", doc_path("d", "x"))]),
                ast.ForClause([("b", doc_path("d", "y"))]),
                ast.ReturnClause(ast.VarRef("a")),
            ]
        )
        assert [name for name, _ in flwor.for_bindings()] == ["a", "b"]

    def test_where_condition_none(self):
        flwor = ast.FLWOR(
            [
                ast.ForClause([("a", doc_path("d", "x"))]),
                ast.ReturnClause(ast.VarRef("a")),
            ]
        )
        assert flwor.where_condition() is None

    def test_pretty_text_indents_nested_let(self):
        inner = ast.FLWOR(
            [
                ast.ForClause([("b", doc_path("d", "y"))]),
                ast.ReturnClause(ast.VarRef("b")),
            ]
        )
        flwor = ast.FLWOR(
            [
                ast.ForClause([("a", doc_path("d", "x"))]),
                ast.LetClause("v", inner),
                ast.ReturnClause(ast.VarRef("a")),
            ]
        )
        pretty = flwor.to_pretty_text()
        assert "let $v := {" in pretty
        assert "\n  for $b" in pretty
