"""Unit tests for the conjunctive planner."""

import pytest

from repro.xquery import ast
from repro.xquery.errors import XQueryEvaluationError
from repro.xquery.parser import parse_xquery
from repro.xquery.plan import (
    build_plan,
    enumerate_tuples,
    flatten_conjuncts,
    free_variables,
    is_plannable,
)


def flwor(text):
    return parse_xquery(text)


class TestFreeVariables:
    def test_simple(self):
        expr = parse_xquery('for $a in doc("d")//x where $a = $b return $a')
        assert free_variables(expr) == {"a", "b"}

    def test_nested_flwor(self):
        expr = parse_xquery(
            'let $v := { for $x in doc("d")//y where $x = $outer return $x } '
            "return count($v)"
        )
        assert "outer" in free_variables(expr)

    def test_quantifier_variable(self):
        expr = parse_xquery(
            'for $a in doc("d")//x where some $q in $a//y satisfies '
            "($q = 1) return $a"
        )
        assert "q" in free_variables(expr)


class TestFlattenConjuncts:
    def test_none(self):
        assert flatten_conjuncts(None) == []

    def test_nested_and(self):
        condition = ast.And(
            [
                ast.And([ast.Literal(1), ast.Literal(2)]),
                ast.Literal(3),
            ]
        )
        assert len(flatten_conjuncts(condition)) == 3

    def test_or_is_single_conjunct(self):
        condition = ast.Or([ast.Literal(1), ast.Literal(2)])
        assert flatten_conjuncts(condition) == [condition]


class TestPlannable:
    def test_standard_shape(self):
        assert is_plannable(
            flwor('for $a in doc("d")//x where $a = 1 return $a')
        )

    def test_with_lets(self):
        assert is_plannable(
            flwor(
                'for $a in doc("d")//x let $v := count($a) where $v = 1 '
                "return $a"
            )
        )

    def test_let_before_for_not_plannable(self):
        assert not is_plannable(
            flwor('let $v := 1 for $a in doc("d")//x return $a')
        )

    def test_let_only_not_plannable(self):
        assert not is_plannable(flwor("let $v := 1 return $v"))


class TestBuildPlan:
    def test_classification(self):
        query = flwor(
            'for $a in doc("d")//x, $b in doc("d")//y '
            'let $v := count($a) '
            'where mqf($a, $b) and $a = "k" and $a = $b and count($v) = 1 '
            "return $a"
        )
        plan = build_plan(query, ["v"], set())
        assert len(plan.mqf_groups) == 1
        assert plan.mqf_groups[0].variables == ["a", "b"]
        assert len(plan.single_var_predicates["a"]) == 1
        # $a = $b crosses variables; count($v) touches a let var.
        assert len(plan.residual_conjuncts) == 2

    def test_outer_variable_predicate_is_single_var(self):
        query = flwor(
            'for $a in doc("d")//x where $a = $outer return $a'
        )
        plan = build_plan(query, [], {"outer"})
        assert len(plan.single_var_predicates["a"]) == 1

    def test_second_mqf_sharing_vars_becomes_extra(self):
        query = flwor(
            'for $a in doc("d")//x, $b in doc("d")//y, $c in doc("d")//z '
            "where mqf($a, $b) and mqf($b, $c) return $a"
        )
        plan = build_plan(query, [], set())
        assert len(plan.mqf_groups) == 1
        assert len(plan.extra_mqf_conjuncts) == 1


class TestEnumerateTuples:
    def test_cross_product_of_singleton_streams(self):
        query = flwor(
            'for $a in doc("d")//x, $b in doc("d")//y return $a'
        )
        plan = build_plan(query, [], set())
        tuples = enumerate_tuples(
            plan, {"a": [1, 2], "b": [10]}, {"a": [1, 2], "b": [10]}
        )
        assert tuples == [{"a": 1, "b": 10}, {"a": 2, "b": 10}]

    def test_cross_product_guard(self):
        query = flwor(
            'for $a in doc("d")//x, $b in doc("d")//y return $a'
        )
        plan = build_plan(query, [], set())
        big = list(range(4000))
        with pytest.raises(XQueryEvaluationError):
            enumerate_tuples(plan, {"a": big, "b": big}, {"a": big, "b": big})

    def test_mqf_over_non_nodes_rejected(self):
        query = flwor(
            'for $a in doc("d")//x, $b in doc("d")//y where mqf($a, $b) '
            "return $a"
        )
        plan = build_plan(query, [], set())
        with pytest.raises(XQueryEvaluationError):
            enumerate_tuples(plan, {"a": [1], "b": [2]},
                             {"a": [1], "b": [2]})

    def test_dependent_bindings_not_plannable(self):
        assert not is_plannable(
            flwor('for $b in doc("d")//book, $a in $b//author return $a')
        )

    def test_independent_bindings_plannable(self):
        assert is_plannable(
            flwor(
                'for $b in doc("d")//book, $a in doc("d")//author return $a'
            )
        )
