"""Unit tests for the value model (atomization, EBV, comparison)."""

import pytest

from repro.xmlstore.model import ElementNode, TextNode
from repro.xquery.errors import XQueryTypeError
from repro.xquery.values import (
    atomize,
    compare_atomic,
    effective_boolean_value,
    general_compare,
    sort_key,
    string_value,
)


def element(text):
    node = ElementNode("e")
    node.append(TextNode(text))
    return node


class TestAtomize:
    def test_numeric_text_becomes_number(self):
        assert atomize(element("1991")) == 1991.0

    def test_float_text(self):
        assert atomize(element("65.95")) == 65.95

    def test_plain_text_stays_string(self):
        assert atomize(element("Traffic")) == "Traffic"

    def test_whitespace_trimmed(self):
        assert atomize(element("  42 ")) == 42.0

    def test_atomics_pass_through(self):
        assert atomize(5) == 5
        assert atomize("x") == "x"
        assert atomize(True) is True


class TestEffectiveBooleanValue:
    def test_empty_is_false(self):
        assert effective_boolean_value([]) is False

    def test_node_is_true(self):
        assert effective_boolean_value([element("")]) is True

    def test_boolean_passthrough(self):
        assert effective_boolean_value([False]) is False
        assert effective_boolean_value([True]) is True

    def test_zero_is_false(self):
        assert effective_boolean_value([0]) is False
        assert effective_boolean_value([0.5]) is True

    def test_empty_string_false(self):
        assert effective_boolean_value([""]) is False
        assert effective_boolean_value(["x"]) is True

    def test_multi_atomic_raises(self):
        with pytest.raises(XQueryTypeError):
            effective_boolean_value([1, 2])


class TestComparison:
    def test_numeric_comparison(self):
        assert compare_atomic(">", 2000, 1991)
        assert not compare_atomic("<", 2000, 1991)

    def test_string_number_coercion(self):
        assert compare_atomic("=", "1991", 1991)
        assert compare_atomic(">", "2000", 1991)

    def test_case_insensitive_string_equality(self):
        assert compare_atomic("=", "Addison-Wesley", "addison-wesley")

    def test_string_whitespace_trimmed(self):
        assert compare_atomic("=", " Traffic ", "Traffic")

    def test_inequality_ops(self):
        assert compare_atomic("!=", "a", "b")
        assert compare_atomic("<=", 1, 1)
        assert compare_atomic(">=", 2, 1)

    def test_general_compare_is_existential(self):
        left = [element("Traffic"), element("Tribute")]
        assert general_compare("=", left, ["tribute"])
        assert not general_compare("=", left, ["nothing"])

    def test_general_compare_empty_is_false(self):
        assert not general_compare("=", [], ["x"])
        assert not general_compare("=", ["x"], [])


class TestSortKey:
    def test_empty_sorts_first(self):
        assert sort_key([]) < sort_key([element("a")])

    def test_numbers_before_strings(self):
        assert sort_key([element("5")]) < sort_key([element("abc")])

    def test_numeric_order(self):
        assert sort_key([2]) < sort_key([10])

    def test_string_case_insensitive(self):
        assert sort_key(["Apple"]) == sort_key(["apple"])


class TestStringValue:
    def test_node(self):
        assert string_value(element("x")) == "x"

    def test_float_integer_formatting(self):
        assert string_value(3.0) == "3"
        assert string_value(3.5) == "3.5"

    def test_boolean(self):
        assert string_value(True) == "true"
