"""Property-based tests for the XML substrate (hypothesis).

Invariants:

* serialize -> parse is the identity on trees (round-trip);
* preorder numbering: ids strictly increase in document order, subtree
  ranges nest, and ``is_ancestor_of`` agrees with parent-chain walking;
* the LCA is a common ancestor of maximal depth.
"""

from hypothesis import given, settings, strategies as st

from repro.xmlstore.model import Document, ElementNode, TextNode, lowest_common_ancestor
from repro.xmlstore.parser import parse_fragment
from repro.xmlstore.serializer import serialize

_tags = st.sampled_from(["a", "b", "c", "item", "node", "x1"])
_texts = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\r", categories=("L", "N", "P", "Zs")
    ),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip())


@st.composite
def elements(draw, depth=0):
    element = ElementNode(draw(_tags))
    for name in draw(st.lists(_tags, max_size=2, unique=True)):
        element.set_attribute(name, draw(_texts))
    if depth < 3:
        for child_kind in draw(st.lists(st.booleans(), max_size=3)):
            if child_kind:
                element.append(draw(elements(depth=depth + 1)))
            else:
                element.append(TextNode(draw(_texts)))
    return element


def _merge_adjacent_text(element):
    """Parsing merges adjacent text runs; normalise before comparing."""
    merged = []
    for child in element.children:
        if (
            isinstance(child, TextNode)
            and merged
            and isinstance(merged[-1], TextNode)
        ):
            merged[-1] = TextNode(merged[-1].text + child.text)
        else:
            if isinstance(child, ElementNode):
                _merge_adjacent_text(child)
            merged.append(child)
    element.children = merged
    return element


def _tree_equal(left, right):
    if isinstance(left, TextNode) or isinstance(right, TextNode):
        return (
            isinstance(left, TextNode)
            and isinstance(right, TextNode)
            and left.text == right.text
        )
    if left.tag != right.tag:
        return False
    left_attrs = {(a.name, a.value) for a in left.attributes}
    right_attrs = {(a.name, a.value) for a in right.attributes}
    if left_attrs != right_attrs:
        return False
    if len(left.children) != len(right.children):
        return False
    return all(
        _tree_equal(lc, rc) for lc, rc in zip(left.children, right.children)
    )


@given(elements())
@settings(max_examples=60)
def test_serialize_parse_roundtrip(element):
    reparsed = parse_fragment(serialize(element), keep_whitespace=True)
    assert _tree_equal(_merge_adjacent_text(element), reparsed)


@given(elements())
@settings(max_examples=60)
def test_preorder_ids_strictly_increase(element):
    document = Document(element)
    ids = [node.node_id for node in document.nodes]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)


@given(elements())
@settings(max_examples=60)
def test_subtree_ranges_nest(element):
    document = Document(element)
    for node in document.nodes:
        assert node.node_id <= node.subtree_end
        if node.parent is not None:
            assert node.parent.node_id < node.node_id
            assert node.subtree_end <= node.parent.subtree_end


@given(elements())
@settings(max_examples=60)
def test_ancestor_predicate_matches_parent_chain(element):
    document = Document(element)
    nodes = document.nodes
    for node in nodes[:: max(1, len(nodes) // 8)]:
        chain = set(map(id, node.ancestors()))
        for other in nodes[:: max(1, len(nodes) // 8)]:
            assert other.is_ancestor_of(node) == (id(other) in chain)


@given(elements(), st.data())
@settings(max_examples=60)
def test_lca_is_deepest_common_ancestor(element, data):
    document = Document(element)
    nodes = document.nodes
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    lca = lowest_common_ancestor(a, b)
    ancestors_a = {id(n) for n in a.ancestors()} | {id(a)}
    ancestors_b = {id(n) for n in b.ancestors()} | {id(b)}
    common = ancestors_a & ancestors_b
    assert id(lca) in common
    for node in [a, b, *a.ancestors(), *b.ancestors()]:
        if id(node) in common:
            assert node.depth <= lca.depth
