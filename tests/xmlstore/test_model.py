"""Unit tests for the XML node model."""

import pytest

from repro.xmlstore.model import (
    Document,
    ElementNode,
    TextNode,
    lowest_common_ancestor,
)


def build_sample():
    root = ElementNode("movies")
    year = root.append_element("year", "2000")
    movie = year.append_element("movie")
    movie.append_element("title", "Traffic")
    movie.append_element("director", "Steven Soderbergh")
    return Document(root, name="m")


class TestConstruction:
    def test_append_element_sets_parent(self):
        root = ElementNode("a")
        child = root.append_element("b")
        assert child.parent is root
        assert root.child_elements() == [child]

    def test_append_element_with_text(self):
        root = ElementNode("a")
        child = root.append_element("b", "hello")
        assert child.string_value() == "hello"

    def test_set_attribute_and_get(self):
        element = ElementNode("a")
        element.set_attribute("year", 1994)
        assert element.get_attribute("year") == "1994"
        assert element.get_attribute("missing") is None
        assert element.get_attribute("missing", "x") == "x"

    def test_set_attribute_replaces(self):
        element = ElementNode("a")
        element.set_attribute("k", "1")
        element.set_attribute("k", "2")
        assert element.get_attribute("k") == "2"
        assert len(element.attributes) == 1

    def test_attribute_tag_has_at_prefix(self):
        element = ElementNode("a")
        attribute = element.set_attribute("year", "1994")
        assert attribute.tag == "@year"

    def test_document_requires_element_root(self):
        with pytest.raises(TypeError):
            Document(TextNode("x"))


class TestNumbering:
    def test_preorder_ids_are_sequential(self):
        document = build_sample()
        ids = [node.node_id for node in document.nodes]
        assert ids == list(range(len(ids)))

    def test_root_is_node_zero(self):
        document = build_sample()
        assert document.root.node_id == 0
        assert document.root.depth == 0

    def test_depths_increase_by_one(self):
        document = build_sample()
        for node in document.nodes:
            if node.parent is not None:
                assert node.depth == node.parent.depth + 1

    def test_subtree_end_covers_descendants(self):
        document = build_sample()
        root = document.root
        assert root.subtree_end == document.node_count() - 1

    def test_attributes_get_ids(self):
        root = ElementNode("a", attributes={"k": "v"})
        document = Document(root)
        attribute = root.attributes[0]
        assert attribute.node_id == 1
        assert attribute.depth == 1

    def test_reindex_after_mutation(self):
        document = build_sample()
        document.root.append_element("extra")
        document.reindex()
        assert document.nodes[-1].tag == "extra"


class TestStructuralPredicates:
    def test_ancestor_descendant(self):
        document = build_sample()
        root = document.root
        title = next(
            node for node in document.iter_elements() if node.tag == "title"
        )
        assert root.is_ancestor_of(title)
        assert title.is_descendant_of(root)
        assert not title.is_ancestor_of(root)

    def test_not_own_ancestor(self):
        document = build_sample()
        assert not document.root.is_ancestor_of(document.root)

    def test_ancestors_nearest_first(self):
        document = build_sample()
        title = next(
            node for node in document.iter_elements() if node.tag == "title"
        )
        tags = [node.tag for node in title.ancestors()]
        assert tags == ["movie", "year", "movies"]

    def test_root_method(self):
        document = build_sample()
        title = next(
            node for node in document.iter_elements() if node.tag == "title"
        )
        assert title.root() is document.root


class TestLCA:
    def test_lca_of_siblings_is_parent(self):
        document = build_sample()
        movie = next(
            node for node in document.iter_elements() if node.tag == "movie"
        )
        title, director = movie.child_elements()
        assert lowest_common_ancestor(title, director) is movie

    def test_lca_with_self(self):
        document = build_sample()
        assert lowest_common_ancestor(document.root, document.root) is document.root

    def test_lca_ancestor_descendant(self):
        document = build_sample()
        title = next(
            node for node in document.iter_elements() if node.tag == "title"
        )
        assert lowest_common_ancestor(document.root, title) is document.root

    def test_lca_different_trees_raises(self):
        one = build_sample()
        other = build_sample()
        with pytest.raises(ValueError):
            lowest_common_ancestor(one.root, other.root.child_elements()[0])


class TestStringValue:
    def test_element_string_value_concatenates(self):
        root = ElementNode("a")
        root.append(TextNode("x"))
        child = root.append_element("b", "y")
        root.append(TextNode("z"))
        assert root.string_value() == "xyz"
        assert child.string_value() == "y"

    def test_iter_descendants_includes_attributes(self):
        root = ElementNode("a", attributes={"k": "v"})
        root.append_element("b")
        kinds = [type(node).__name__ for node in root.iter_descendants()]
        assert kinds == ["AttributeNode", "ElementNode"]
