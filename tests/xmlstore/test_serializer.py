"""Unit tests for serialization."""

from repro.xmlstore.model import ElementNode, TextNode
from repro.xmlstore.parser import parse_fragment
from repro.xmlstore.serializer import (
    escape_attribute,
    escape_text,
    serialize,
    to_pretty_string,
)


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(ElementNode("a")) == "<a/>"

    def test_text_content(self):
        root = ElementNode("a")
        root.append(TextNode("x<y"))
        assert serialize(root) == "<a>x&lt;y</a>"

    def test_attributes(self):
        root = ElementNode("a", attributes={"k": 'v"w'})
        assert serialize(root) == '<a k="v&quot;w"/>'

    def test_roundtrip_simple(self):
        text = '<a k="v"><b>x &amp; y</b><c/></a>'
        assert serialize(parse_fragment(text)) == text

    def test_roundtrip_nested(self):
        text = "<bib><book year=\"1994\"><title>TCP/IP</title></book></bib>"
        reparsed = parse_fragment(serialize(parse_fragment(text)))
        assert reparsed.child_elements()[0].get_attribute("year") == "1994"


class TestPretty:
    def test_leaf_on_one_line(self):
        root = ElementNode("a")
        root.append_element("b", "x")
        pretty = to_pretty_string(root)
        assert "<b>x</b>" in pretty

    def test_indentation(self):
        root = ElementNode("a")
        child = root.append_element("b")
        child.append_element("c", "y")
        pretty = to_pretty_string(root)
        assert "\n  <b>" in pretty
        assert "\n    <c>y</c>" in pretty

    def test_pretty_parses_back(self):
        root = ElementNode("a")
        root.append_element("b", "x & y")
        reparsed = parse_fragment(to_pretty_string(root))
        assert reparsed.child_elements()[0].string_value() == "x & y"
