"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.xmlstore.errors import XMLParseError
from repro.xmlstore.model import ElementNode, TextNode
from repro.xmlstore.parser import parse_document, parse_fragment


class TestBasicParsing:
    def test_single_element(self):
        root = parse_fragment("<a/>")
        assert root.tag == "a"
        assert root.children == []

    def test_element_with_text(self):
        root = parse_fragment("<a>hello</a>")
        assert root.string_value() == "hello"

    def test_nested_elements(self):
        root = parse_fragment("<a><b><c>x</c></b></a>")
        assert root.child_elements()[0].child_elements()[0].string_value() == "x"

    def test_attributes_double_quoted(self):
        root = parse_fragment('<a k="v" j="w"/>')
        assert root.get_attribute("k") == "v"
        assert root.get_attribute("j") == "w"

    def test_attributes_single_quoted(self):
        root = parse_fragment("<a k='v'/>")
        assert root.get_attribute("k") == "v"

    def test_mixed_content(self):
        root = parse_fragment("<a>x<b>y</b>z</a>", keep_whitespace=True)
        kinds = [type(child).__name__ for child in root.children]
        assert kinds == ["TextNode", "ElementNode", "TextNode"]

    def test_whitespace_dropped_by_default(self):
        root = parse_fragment("<a>\n  <b>x</b>\n</a>")
        assert all(isinstance(child, ElementNode) for child in root.children)

    def test_whitespace_kept_on_request(self):
        root = parse_fragment("<a>\n  <b>x</b>\n</a>", keep_whitespace=True)
        assert any(isinstance(child, TextNode) for child in root.children)


class TestEntitiesAndSpecials:
    def test_predefined_entities(self):
        root = parse_fragment("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert root.string_value() == "<>&'\""

    def test_numeric_character_references(self):
        root = parse_fragment("<a>&#65;&#x42;</a>")
        assert root.string_value() == "AB"

    def test_entities_in_attributes(self):
        root = parse_fragment('<a k="x &amp; y"/>')
        assert root.get_attribute("k") == "x & y"

    def test_cdata(self):
        root = parse_fragment("<a><![CDATA[<not parsed> & raw]]></a>")
        assert root.string_value() == "<not parsed> & raw"

    def test_comments_ignored(self):
        root = parse_fragment("<a><!-- comment --><b/></a>")
        assert [child.tag for child in root.child_elements()] == ["b"]

    def test_processing_instructions_ignored(self):
        root = parse_fragment("<a><?php echo ?><b/></a>")
        assert [child.tag for child in root.child_elements()] == ["b"]

    def test_xml_declaration_and_doctype(self):
        text = '<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>'
        assert parse_fragment(text).tag == "a"

    def test_namespace_prefix_kept_verbatim(self):
        root = parse_fragment("<ns:a><ns:b/></ns:a>")
        assert root.tag == "ns:a"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a k=v/>",
            '<a k="v" k="w"/>',
            "<a>&bogus;</a>",
            "<a/><b/>",
            "<a><!-- unterminated</a>",
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(XMLParseError):
            parse_fragment(text)

    def test_error_carries_location(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_fragment("<a>\n<b></c>\n</a>")
        assert excinfo.value.line == 2


class TestDocumentParsing:
    def test_parse_document_indexes(self):
        document = parse_document("<a><b>x</b></a>", name="t")
        assert document.name == "t"
        assert document.node_count() == 3  # a, b, text

    def test_parse_document_counts_attributes(self):
        document = parse_document('<a k="v"/>')
        assert document.node_count() == 2
