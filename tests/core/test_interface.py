"""Unit tests for the NaLIX interface facade."""

from repro.core.interface import NaLIX


class TestAsk:
    def test_successful_query(self, movie_nalix):
        result = movie_nalix.ask(
            "Return the title of every movie directed by Ron Howard."
        )
        assert result.ok
        assert sorted(result.values()) == [
            "A Beautiful Mind",
            "How the Grinch Stole Christmas",
            "Tribute",
        ]

    def test_rejected_query_has_feedback(self, movie_nalix):
        result = movie_nalix.ask("Return the isbn of every movie.")
        assert not result.ok
        assert result.errors
        assert result.xquery_text is None

    def test_parse_failure_is_feedback_not_exception(self, movie_nalix):
        result = movie_nalix.ask("")
        assert not result.ok
        assert any(m.code == "parse-failure" for m in result.errors)

    def test_warnings_do_not_reject(self, movie_nalix):
        result = movie_nalix.ask("Return every movie and their titles.")
        assert result.ok
        assert result.warnings

    def test_translation_without_evaluation(self, movie_nalix):
        result = movie_nalix.ask("Return every movie.", evaluate=False)
        assert result.ok
        assert result.items == []
        assert result.xquery_text

    def test_timings_recorded(self, movie_nalix):
        result = movie_nalix.ask("Return every movie.")
        assert result.translation_seconds > 0
        assert result.evaluation_seconds > 0

    def test_emitted_text_is_reparsed(self, movie_nalix):
        """ask() evaluates the serialized text, so text is the contract."""
        result = movie_nalix.ask("Return the title of every movie.")
        assert result.ok
        from repro.xquery.parser import parse_xquery

        assert parse_xquery(result.xquery_text).to_text() == result.xquery_text


class TestQueryResult:
    def test_nodes_deduplicated(self, movie_nalix):
        result = movie_nalix.ask(
            "Return the director of every movie directed by Ron Howard."
        )
        assert result.ok
        nodes = result.nodes()
        assert len(nodes) == len({id(node) for node in nodes})

    def test_distinct_items_keeps_atomics(self, dblp_nalix):
        result = dblp_nalix.ask(
            "Return the number of books published by each publisher."
        )
        assert result.ok
        items = result.distinct_items()
        assert items
        assert all(not hasattr(item, "node_id") or True for item in items)
        # One count per publisher element, duplicates included.
        assert len(items) == len(result.items)

    def test_repr_mentions_status(self, movie_nalix):
        ok = movie_nalix.ask("Return every movie.")
        bad = movie_nalix.ask("Return the isbn of every movie.")
        assert "ok" in repr(ok)
        assert "rejected" in repr(bad)


class TestMultipleDomains:
    def test_same_pipeline_on_bibliography(self, bib_database):
        nalix = NaLIX(bib_database)
        result = nalix.ask(
            'Return the title of every book published by "Addison-Wesley".'
        )
        assert result.ok
        assert len(result.values()) == 2

    def test_wh_question(self, movie_nalix):
        result = movie_nalix.ask("What is the title of every movie?")
        assert result.ok
        assert len(result.values()) == 5
