"""Unit tests for the semantic analysis (Defs. 1-10).

The reference points are the paper's own analyses of Queries 2 and 3.
"""

from repro.core.semantics import (
    analyze,
    directly_related,
    equivalent_name_tokens,
    find_core_tokens,
    modifier_signature,
    token_children,
    token_parent,
)
from repro.core.token_types import TokenType, token_type

QUERY_2 = (
    "Return every director, where the number of movies directed by the "
    "director is the same as the number of movies directed by Ron Howard."
)


def prepared(nalix, sentence):
    tree = nalix.classify(nalix.parse(sentence))
    feedback = nalix.validate(tree)
    assert feedback.ok, feedback.render()
    return tree


def nts(tree, lemma=None):
    return [
        node
        for node in tree.preorder()
        if token_type(node) == TokenType.NT
        and (lemma is None or node.lemma == lemma)
    ]


class TestStructuralHelpers:
    def test_token_children_see_through_markers(self, movie_nalix):
        tree = prepared(movie_nalix, "Return the title of every movie.")
        title = nts(tree, "title")[0]
        children = token_children(title)
        assert [child.lemma for child in children] == ["movie"]

    def test_token_parent_skips_markers(self, movie_nalix):
        tree = prepared(movie_nalix, "Return the title of every movie.")
        movie = nts(tree, "movie")[0]
        assert token_parent(movie).lemma == "title"

    def test_directly_related_through_cm(self, movie_nalix):
        tree = prepared(movie_nalix, "Return the title of every movie.")
        title, movie = nts(tree, "title")[0], nts(tree, "movie")[0]
        assert directly_related(title, movie)

    def test_directly_related_through_verb(self, movie_nalix):
        tree = prepared(
            movie_nalix, "Return every movie directed by Ron Howard."
        )
        movie = nts(tree, "movie")[0]
        implicit = [n for n in nts(tree) if n.implicit][0]
        assert directly_related(movie, implicit)


class TestEquivalence:
    def test_same_word_equivalent(self, movie_nalix):
        tree = prepared(movie_nalix, QUERY_2)
        directors = [n for n in nts(tree, "director") if not n.implicit]
        assert len(directors) == 2
        assert equivalent_name_tokens(directors[0], directors[1])

    def test_implicit_not_equivalent_to_explicit(self, movie_nalix):
        tree = prepared(movie_nalix, QUERY_2)
        explicit = [n for n in nts(tree, "director") if not n.implicit][0]
        implicit = [n for n in nts(tree) if n.implicit][0]
        assert not equivalent_name_tokens(explicit, implicit)

    def test_articles_vacuous_for_signature(self, movie_nalix):
        tree = prepared(
            movie_nalix, "Return the movie and every new movie."
        )
        movies = nts(tree, "movie")
        signatures = [modifier_signature(node) for node in movies]
        assert signatures[0] == frozenset()
        assert signatures[1] == frozenset({"new"})


class TestCoreTokens:
    def test_query2_cores_are_directors(self, movie_nalix):
        tree = prepared(movie_nalix, QUERY_2)
        cores = find_core_tokens(tree)
        assert {node.lemma for node in cores} == {"director"}
        # Both explicit mentions plus the implicit one (Def. 3 (ii)).
        assert len(cores) == 3

    def test_no_cores_without_operator(self, movie_nalix):
        tree = prepared(movie_nalix, "Return the title of every movie.")
        assert find_core_tokens(tree) == []


class TestVariableBinding:
    def test_query2_variables(self, movie_nalix):
        tree = prepared(movie_nalix, QUERY_2)
        model = analyze(tree)
        directors = [v for v in model.variables if v.lemma == "director"]
        movies = [v for v in model.variables if v.lemma == "movie"]
        # Paper Table 3: $v1 (nodes 2,7), $v4 (implicit 11); $v2, $v3.
        assert len(directors) == 2
        assert len(movies) == 2
        explicit = next(v for v in directors if not v.implicit)
        assert len(explicit.nodes) == 2
        assert all(v.is_core for v in directors)

    def test_repeated_mention_binds_once(self, movie_nalix):
        tree = prepared(
            movie_nalix,
            "Return the title of every movie, where the director of the "
            "movie is Ron Howard.",
        )
        model = analyze(tree)
        movies = [v for v in model.variables if v.lemma == "movie"]
        assert len(movies) == 1
        assert len(movies[0].nodes) == 2


class TestRelatedGroups:
    def test_query2_groups(self, movie_nalix):
        tree = prepared(movie_nalix, QUERY_2)
        model = analyze(tree)
        groups = [
            {variable.lemma + ("!" if variable.implicit else "")
             for variable in group}
            for group in model.related_groups
        ]
        assert {"director", "movie"} in groups
        assert {"director!", "movie"} in groups

    def test_no_core_means_one_group(self, movie_nalix):
        tree = prepared(movie_nalix, "Return the title of every movie.")
        model = analyze(tree)
        assert len(model.related_groups) == 1

    def test_core_variable_related_to(self, movie_nalix):
        tree = prepared(movie_nalix, QUERY_2)
        model = analyze(tree)
        movie_variable = next(
            v for v in model.variables if v.lemma == "movie"
        )
        core = model.core_variable_related_to(movie_variable)
        assert core is not None
        assert core.lemma == "director"
