"""End-to-end checks against the paper's worked examples.

These are the reproduction's acceptance tests: the three queries of
Figure 1 on the Figure 1 movie database, with the behaviours the paper
describes in Sections 3 and 4.
"""

import pytest

from repro.core.interface import NaLIX
from repro.core.token_types import TokenType, token_type
from repro.database.store import Database
from repro.xmlstore.model import Document, ElementNode

QUERY_1 = (
    "Return every director who has directed as many movies as has "
    "Ron Howard."
)
QUERY_2 = (
    "Return every director, where the number of movies directed by the "
    "director is the same as the number of movies directed by Ron Howard."
)
QUERY_3 = (
    "Return the directors of movies, where the title of each movie is the "
    "same as the title of a book."
)


class TestQuery1:
    """Fig. 10: invalid, with an actionable suggestion."""

    def test_rejected(self, movie_nalix):
        result = movie_nalix.ask(QUERY_1)
        assert not result.ok

    def test_suggestion_names_the_term_and_fix(self, movie_nalix):
        result = movie_nalix.ask(QUERY_1)
        unknown = [m for m in result.errors if m.code == "unknown-term"]
        assert any('"as"' in m.text for m in unknown)
        assert any("the same as" in (m.suggestion or "") for m in unknown)


class TestQuery2:
    """Figs. 2, 8, 9 and Tables 3-5."""

    def test_accepted_with_correct_answer(self, movie_nalix):
        result = movie_nalix.ask(QUERY_2)
        assert result.ok, result.render_feedback()
        assert sorted(set(result.values())) == ["Ron Howard"]

    def test_translation_matches_figure9_structure(self, movie_nalix):
        result = movie_nalix.ask(QUERY_2)
        text = result.xquery_text
        # Two director variables outer; both movie variables nested in
        # lets with mqf + value join; the count comparison; the value
        # predicate on the implicit director.
        assert text.count("doc(\"movie.xml\")//director") >= 4
        assert text.count("let $vars") == 2
        assert text.count("mqf(") == 2
        assert "count($vars1) = count($vars2)" in text
        assert '= "Ron Howard"' in text
        assert text.endswith("return $v1")

    def test_implicit_node_inserted(self, movie_nalix):
        result = movie_nalix.ask(QUERY_2)
        implicit = [
            node
            for node in result.parse_tree.preorder()
            if token_type(node) == TokenType.NT and node.implicit
        ]
        # The paper's node 11.
        assert len(implicit) == 1
        assert implicit[0].implicit_value == "Ron Howard"

    def test_parse_tree_matches_figure2_shape(self, movie_nalix):
        result = movie_nalix.ask(QUERY_2)
        tree = result.parse_tree
        # Root CMT with the returned director and the OT beneath it.
        assert token_type(tree) == TokenType.CMT
        ots = [n for n in tree.preorder() if token_type(n) == TokenType.OT]
        assert len(ots) == 1
        assert ots[0].parent is tree
        fts = [n for n in tree.preorder() if token_type(n) == TokenType.FT]
        assert len(fts) == 2
        assert all(ft.parent is ots[0] for ft in fts)


class TestQuery3:
    """Fig. 3: relatedness via equivalent core tokens + value join."""

    @pytest.fixture()
    def catalog_nalix(self):
        root = ElementNode("catalog")
        movies = root.append_element("movies")
        for title, director in [
            ("Traffic", "Steven Soderbergh"),
            ("A Beautiful Mind", "Ron Howard"),
        ]:
            movie = movies.append_element("movie")
            movie.append_element("title", title)
            movie.append_element("director", director)
        books = root.append_element("books")
        for title in ("Traffic", "Data on the Web"):
            book = books.append_element("book")
            book.append_element("title", title)
        database = Database()
        database.load_document(Document(root, name="catalog.xml"))
        return NaLIX(database)

    def test_director_of_shared_title_movie(self, catalog_nalix):
        result = catalog_nalix.ask(QUERY_3)
        assert result.ok, result.render_feedback()
        assert sorted(set(result.values())) == ["Steven Soderbergh"]

    def test_two_related_groups(self, catalog_nalix):
        result = catalog_nalix.ask(QUERY_3)
        # Paper: node sets {2,4,6,8} and {9,11}.
        assert result.xquery_text.count("mqf(") == 2

    def test_title_join_condition(self, catalog_nalix):
        result = catalog_nalix.ask(QUERY_3)
        model = result.translation.model
        titles = [v for v in model.variables if v.lemma == "title"]
        assert len(titles) == 2


class TestSection2Example:
    """"Find the director of Gone with the Wind" from Sec. 2: mqf picks
    the movie's title even when a book shares it."""

    def test_director_disambiguation(self):
        root = ElementNode("catalog")
        movie = root.append_element("movie")
        movie.append_element("title", "Gone with the Wind")
        movie.append_element("director", "Victor Fleming")
        book = root.append_element("book")
        book.append_element("title", "Gone with the Wind")
        book.append_element("author", "Margaret Mitchell")
        database = Database()
        database.load_document(Document(root, name="catalog.xml"))
        nalix = NaLIX(database)

        result = nalix.ask(
            'Return the director, where the title of the movie of the '
            'director is "Gone with the Wind".'
        )
        assert result.ok, result.render_feedback()
        assert sorted(set(result.values())) == ["Victor Fleming"]
