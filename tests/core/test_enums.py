"""Unit tests for the enumerated phrase sets."""

from repro.core.enums import (
    COMMAND_PHRASES,
    CONNECTION_PREPOSITIONS,
    FUNCTION_PHRASES,
    OPERATOR_PHRASES,
    ORDER_PHRASES,
    parser_vocabulary,
    suggest_replacement,
)
from repro.nlp.categories import Category


class TestEnumContents:
    def test_paper_examples_present(self):
        assert "return" in COMMAND_PHRASES
        assert OPERATOR_PHRASES["the same as"] == "="
        assert FUNCTION_PHRASES["the number of"] == "count"
        assert "sorted by" in ORDER_PHRASES

    def test_as_deliberately_absent(self):
        # The paper's Query 1 depends on "as" being out of vocabulary.
        assert "as" not in CONNECTION_PREPOSITIONS
        assert "as" not in OPERATOR_PHRASES

    def test_operator_symbols_valid(self):
        assert set(OPERATOR_PHRASES.values()) <= {
            "=", "!=", "<", "<=", ">", ">=", "contains",
        }

    def test_function_names_are_aggregates(self):
        assert set(FUNCTION_PHRASES.values()) <= {
            "count", "sum", "avg", "min", "max",
        }

    def test_sets_stay_small(self):
        # The paper: "we have kept these small — each set has about a
        # dozen elements". Allow some headroom but prevent bloat.
        assert len(COMMAND_PHRASES) <= 20
        assert len(CONNECTION_PREPOSITIONS) <= 15


class TestParserVocabulary:
    def test_categories(self):
        vocabulary = parser_vocabulary()
        assert vocabulary["return"] == Category.COMMAND
        assert vocabulary["the number of"] == Category.FUNCTION
        assert vocabulary["be the same as"] == Category.COMPARATIVE
        assert vocabulary["sorted by"] == Category.ORDER

    def test_wh_words_excluded(self):
        vocabulary = parser_vocabulary()
        assert "what" not in vocabulary


class TestSuggestions:
    def test_as_suggests_operator_phrase(self):
        suggestion = suggest_replacement("as")
        assert suggestion is not None
        assert "as" in suggestion.split()

    def test_unknown_word_no_suggestion(self):
        assert suggest_replacement("zebra") is None
