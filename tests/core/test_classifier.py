"""Unit tests for token classification (Tables 1 and 2)."""

import pytest

from repro.core.classifier import classify_tree
from repro.core.enums import parser_vocabulary
from repro.core.token_types import TokenType, token_type
from repro.nlp.dependency import DependencyParser


@pytest.fixture(scope="module")
def parser():
    return DependencyParser(parser_vocabulary())


def classified(parser, sentence):
    return classify_tree(parser.parse(sentence))


def types_of(tree, text):
    return [token_type(n) for n in tree.preorder() if n.text == text]


class TestTokenTypes:
    def test_command_token(self, parser):
        tree = classified(parser, "Return every movie.")
        assert token_type(tree) == TokenType.CMT

    def test_name_tokens(self, parser):
        tree = classified(parser, "Return the title of every movie.")
        assert types_of(tree, "title") == [TokenType.NT]
        assert types_of(tree, "movie") == [TokenType.NT]

    def test_value_token_with_parsed_literal(self, parser):
        tree = classified(parser, "Return every book published after 1991.")
        vt = next(n for n in tree.preorder() if n.text == "1991")
        assert token_type(vt) == TokenType.VT
        assert vt.value == 1991

    def test_quoted_value_stays_string(self, parser):
        tree = classified(parser, 'Return every book whose year is "1991".')
        vt = next(n for n in tree.preorder() if token_type(n) == TokenType.VT)
        assert vt.value == "1991"

    def test_operator_token_payload(self, parser):
        tree = classified(parser, "Return every book published after 1991.")
        ot = next(n for n in tree.preorder() if token_type(n) == TokenType.OT)
        assert ot.operator == ">"

    def test_function_token_payload(self, parser):
        tree = classified(parser, "Return the number of movies.")
        ft = next(n for n in tree.preorder() if token_type(n) == TokenType.FT)
        assert ft.aggregate == "count"

    def test_min_function(self, parser):
        tree = classified(parser, "Return the lowest price of every book.")
        ft = next(n for n in tree.preorder() if token_type(n) == TokenType.FT)
        assert ft.aggregate == "min"

    def test_order_by_token(self, parser):
        tree = classified(
            parser, "Return the title of every book, sorted by title."
        )
        obt = next(n for n in tree.preorder() if token_type(n) == TokenType.OBT)
        assert obt.descending is False

    def test_descending_order(self, parser):
        tree = classified(
            parser,
            "Return the title of every book, in descending order of year.",
        )
        obt = next(n for n in tree.preorder() if token_type(n) == TokenType.OBT)
        assert obt.descending is True

    def test_quantifier_token(self, parser):
        tree = classified(parser, "Return every movie.")
        assert types_of(tree, "every") == [TokenType.QT]

    def test_negation_token(self, parser):
        tree = classified(
            parser, "Return every book whose year is not greater than 1991."
        )
        assert any(
            token_type(n) == TokenType.NEG for n in tree.preorder()
        )


class TestMarkers:
    def test_connection_markers(self, parser):
        tree = classified(parser, "Return the title of every movie.")
        assert types_of(tree, "of") == [TokenType.CM]

    def test_verb_is_connection_marker(self, parser):
        tree = classified(parser, "Return every movie directed by Ron Howard.")
        assert types_of(tree, "directed by") == [TokenType.CM]

    def test_modifier_markers(self, parser):
        tree = classified(parser, "Return the new movie.")
        assert types_of(tree, "the") == [TokenType.MM]
        assert types_of(tree, "new") == [TokenType.MM]

    def test_pronoun_marker(self, parser):
        tree = classified(parser, "Return every book and their titles.")
        assert TokenType.PM in {token_type(n) for n in tree.preorder()}

    def test_unknown_preposition(self, parser):
        tree = classified(
            parser,
            "Return every director who has directed as many movies as "
            "has Ron Howard.",
        )
        assert TokenType.UNKNOWN in {token_type(n) for n in tree.preorder()}
