"""Unit tests for the feedback message machinery."""

from repro.core.feedback import Feedback, Message


class TestMessage:
    def test_render_error(self):
        message = Message(Message.ERROR, "code", "Something is wrong.",
                          suggestion="Fix it.")
        rendered = message.render()
        assert rendered == "Error: Something is wrong. Suggestion: Fix it."

    def test_render_warning_without_suggestion(self):
        message = Message(Message.WARNING, "code", "Heads up.")
        assert message.render() == "Warning: Heads up."

    def test_repr(self):
        message = Message(Message.ERROR, "code", "text")
        assert "code" in repr(message)


class TestFeedback:
    def test_empty_is_ok(self):
        assert Feedback().ok

    def test_warning_keeps_ok(self):
        feedback = Feedback()
        feedback.warning("w", "heads up")
        assert feedback.ok
        assert len(feedback.warnings) == 1

    def test_error_breaks_ok(self):
        feedback = Feedback()
        feedback.error("e", "bad")
        assert not feedback.ok
        assert len(feedback.errors) == 1

    def test_messages_keep_order(self):
        feedback = Feedback()
        feedback.error("one", "first")
        feedback.warning("two", "second")
        feedback.error("three", "third")
        assert [m.code for m in feedback.messages] == ["one", "two", "three"]

    def test_render_joins_lines(self):
        feedback = Feedback()
        feedback.error("a", "first")
        feedback.warning("b", "second")
        lines = feedback.render().splitlines()
        assert lines[0].startswith("Error:")
        assert lines[1].startswith("Warning:")

    def test_node_attached(self):
        feedback = Feedback()
        sentinel = object()
        feedback.error("a", "first", node=sentinel)
        assert feedback.errors[0].node is sentinel
