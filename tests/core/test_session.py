"""Unit tests for the interactive session layer."""

import pytest

from repro.core.session import QuerySession


@pytest.fixture()
def session(movie_nalix):
    return QuerySession(movie_nalix)


class TestSession:
    def test_first_try_success_zero_iterations(self, session):
        result = session.submit("Return the title of every movie.")
        assert result.ok
        assert session.iterations == 0
        assert session.succeeded

    def test_reformulation_counts(self, session):
        first = session.submit(
            "Return every director who has directed as many movies as has "
            "Ron Howard."
        )
        assert not first.ok
        assert not session.succeeded
        second = session.submit(
            "Return every director, where the number of movies directed by "
            "the director is the same as the number of movies directed by "
            "Ron Howard."
        )
        assert second.ok
        assert session.iterations == 1
        assert session.succeeded

    def test_suggestions_surface(self, session):
        session.submit(
            "Return every director who has directed as many movies as has "
            "Ron Howard."
        )
        suggestions = session.suggestions()
        assert any("the same as" in s for s in suggestions)

    def test_transcript_contains_both_sides(self, session):
        session.submit("Return the isbn of every movie.")
        session.submit("Return the title of every movie.")
        transcript = session.transcript()
        assert "[1] user:" in transcript
        assert "nalix: Error" in transcript
        assert "result(s)" in transcript

    def test_reset(self, session):
        session.submit("Return the title of every movie.")
        session.reset()
        assert session.turns == []
        assert session.last_turn is None
        assert not session.succeeded

    def test_empty_session(self, session):
        assert session.iterations == 0
        assert session.suggestions() == []
        assert session.transcript() == ""
