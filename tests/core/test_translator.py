"""Unit tests for the translation to Schema-Free XQuery (Sec. 3.2)."""

from repro.xquery.parser import parse_xquery


def translation(nalix, sentence):
    result = nalix.ask(sentence, evaluate=False)
    assert result.ok, result.render_feedback()
    return result.xquery_text


class TestBasicMapping:
    def test_single_variable_return(self, movie_nalix):
        text = translation(movie_nalix, "Return every movie.")
        assert "for $v1 in" in text
        assert "//movie" in text
        assert text.endswith("return $v1")

    def test_related_nts_share_mqf(self, movie_nalix):
        text = translation(movie_nalix, "Return the title of every movie.")
        assert "mqf($v1, $v2)" in text

    def test_value_predicate(self, movie_nalix):
        text = translation(
            movie_nalix,
            'Return every movie whose title is "Traffic".',
        )
        assert '$v2 = "Traffic"' in text

    def test_implicit_nt_predicate(self, movie_nalix):
        text = translation(
            movie_nalix, "Return every movie directed by Ron Howard."
        )
        assert "//director" in text
        assert '= "Ron Howard"' in text

    def test_inequality_operator(self, dblp_nalix):
        text = translation(
            dblp_nalix, "Return every book published after 1991."
        )
        assert "> 1991" in text

    def test_negated_operator(self, dblp_nalix):
        text = translation(
            dblp_nalix,
            "Return every book whose year is not greater than 1991.",
        )
        assert "not(" in text

    def test_contains_condition(self, dblp_nalix):
        text = translation(
            dblp_nalix,
            'Return every title that contains "XML".',
        )
        assert 'contains($v1, "XML")' in text

    def test_multiple_returns_as_sequence(self, dblp_nalix):
        text = translation(
            dblp_nalix, "Return the title and the author of every book."
        )
        assert "return ($v1, $v2)" in text

    def test_order_by(self, dblp_nalix):
        text = translation(
            dblp_nalix, "Return the title of every book, sorted by title."
        )
        assert "order by $v1" in text

    def test_order_by_descending(self, dblp_nalix):
        text = translation(
            dblp_nalix,
            "Return the title of every book, in descending order of year.",
        )
        assert "order by $v3 descending" in text or "descending" in text

    def test_generated_text_parses(self, dblp_nalix):
        text = translation(
            dblp_nalix,
            "Return the year and title of every book published by "
            "Addison-Wesley after 1991.",
        )
        assert parse_xquery(text).to_text() == text


class TestValueJoins:
    def test_join_condition_between_groups(self, dblp_nalix):
        text = translation(
            dblp_nalix,
            "Return the title of every book, where the year of the book is "
            "the same as the year of an article.",
        )
        assert text.count("mqf(") == 2
        assert "$v3 = $v5" in text or "= $v" in text


class TestAggregates:
    def test_global_count(self, dblp_nalix):
        text = translation(dblp_nalix, "Return the total number of books.")
        assert "let $vars1 :=" in text
        assert "return count($vars1)" in text

    def test_grouped_count_outer_scope(self, dblp_nalix):
        text = translation(
            dblp_nalix,
            "Return the number of books published by each publisher.",
        )
        # Fig. 6 outer scope: fresh publisher copy value-joined inside.
        assert "let $vars1 :=" in text
        assert "mqf(" in text
        assert "return count($vars1)" in text
        inner = text.split("{")[1].split("}")[0]
        assert "//publisher" in inner
        assert "//book" in inner

    def test_min_aggregate(self, dblp_nalix):
        text = translation(dblp_nalix, "Return the lowest year for each book.")
        assert "min($vars1)" in text

    def test_fig5_with_marker(self, bib_database):
        from repro.core.interface import NaLIX

        nalix = NaLIX(bib_database)
        result = nalix.ask("Return the book with the lowest price.")
        assert result.ok, result.render_feedback()
        text = result.xquery_text
        # Fig. 5: a fresh price variable equated with the global minimum.
        assert "min($vars1)" in text
        assert "= min($vars1)" in text
        values = result.values()
        assert len(values) == 1
        assert "Data on the Web" in values[0]  # the cheapest book

    def test_fig5_outer_predicate_on_aggregated_variable(self, bib_database):
        """Regression: a predicate on the Fig. 5 aggregate variable.

        The let clause consumes the price binding, so "where the price
        is more than 10" must be rewritten onto the fresh equated copy
        — the old code left it referencing the consumed (now unbound)
        variable, which the qlint gate flags as QS001.
        """
        from repro.analysis import analyze_query
        from repro.core.interface import NaLIX

        nalix = NaLIX(bib_database)
        result = nalix.ask(
            "Return the title of the book with the lowest price "
            "where the price is more than 10."
        )
        assert result.ok, result.render_feedback()
        assert analyze_query(result.xquery_text).findings == []
        # The filter lives on the equated copy: the cheapest book
        # (39.95) does cost more than 10, so it is returned.
        values = result.values()
        assert len(values) == 1
        assert "Data on the Web" in values[0]

    def test_fig5_order_by_aggregated_variable(self, bib_database):
        from repro.analysis import analyze_query
        from repro.core.interface import NaLIX

        nalix = NaLIX(bib_database)
        result = nalix.ask(
            "Return the title of the book with the lowest price "
            "sorted by the price."
        )
        assert result.ok, result.render_feedback()
        assert analyze_query(result.xquery_text).findings == []


class TestBindingsTable:
    def test_rows_have_expected_fields(self, movie_nalix):
        result = movie_nalix.ask(
            "Return the title of every movie.", evaluate=False
        )
        rows = result.translation.bindings_table
        assert all(
            {"variable", "content", "nodes", "tags"} <= set(row) for row in rows
        )

    def test_notes_describe_aggregate_planning(self, dblp_nalix):
        result = dblp_nalix.ask(
            "Return the number of books published by each publisher.",
            evaluate=False,
        )
        assert any("Fig.6" in note for note in result.translation.notes)
