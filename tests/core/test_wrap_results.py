"""Tests for composite result construction (wrap_results).

The paper lists "composite result construction" as future work; this
reproduction supports it: each binding tuple is wrapped in a
``<result>`` element, the output convention of the XMP use cases.
"""

import pytest

from repro.core.interface import NaLIX


@pytest.fixture(scope="module")
def wrapping_nalix(small_dblp_database):
    return NaLIX(small_dblp_database, wrap_results=True)


class TestWrapResults:
    def test_xquery_uses_constructor(self, wrapping_nalix):
        result = wrapping_nalix.ask(
            "Return the title and the author of every book.", evaluate=False
        )
        assert result.ok
        assert "<result>{" in result.xquery_text
        assert "}</result>" in result.xquery_text

    def test_results_are_result_elements(self, wrapping_nalix):
        result = wrapping_nalix.ask(
            "Return the title and the author of every book."
        )
        assert result.ok
        assert result.items
        assert all(item.tag == "result" for item in result.items)

    def test_result_contains_both_fields(self, wrapping_nalix,
                                         small_dblp_database):
        result = wrapping_nalix.ask(
            "Return the title and the author of every book."
        )
        first = result.items[0]
        child_tags = {child.tag for child in first.child_elements()}
        assert child_tags == {"title", "author"}

    def test_single_return_also_wrapped(self, wrapping_nalix):
        result = wrapping_nalix.ask("Return the title of every book.")
        assert result.ok
        assert all(item.tag == "result" for item in result.items)

    def test_wrapped_text_roundtrips(self, wrapping_nalix):
        from repro.xquery.parser import parse_xquery

        result = wrapping_nalix.ask(
            "Return the title and the author of every book.", evaluate=False
        )
        assert parse_xquery(result.xquery_text).to_text() == result.xquery_text

    def test_default_interface_not_wrapped(self, dblp_nalix):
        result = dblp_nalix.ask("Return the title of every book.")
        assert all(item.tag == "title" for item in result.items)
