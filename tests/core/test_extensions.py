"""Tests for reproduction extensions beyond the paper's core feature set
(distinct results, sum/avg aggregates end-to-end, negation semantics)."""


class TestDistinctResults:
    def test_distinct_publishers(self, dblp_nalix, small_dblp_database):
        result = dblp_nalix.ask("Return every distinct publisher.")
        assert result.ok, result.render_feedback()
        assert result.xquery_text.startswith("distinct-values(")
        gold = {
            node.string_value()
            for node in small_dblp_database.nodes_with_tag("publisher")
        }
        assert set(result.values()) == gold
        assert len(result.values()) == len(gold)

    def test_different_synonym(self, dblp_nalix):
        result = dblp_nalix.ask("Return every different journal.")
        assert result.ok
        assert len(result.values()) == len(set(result.values()))

    def test_plain_query_keeps_duplicates(self, dblp_nalix,
                                          small_dblp_database):
        result = dblp_nalix.ask("Return every publisher.")
        assert result.ok
        assert len(result.items) == len(
            small_dblp_database.nodes_with_tag("publisher")
        )


class TestMoreAggregates:
    def test_global_average(self, dblp_nalix, small_dblp_database):
        """"the average of the years" (no grouping noun) is global."""
        result = dblp_nalix.ask("Return the average of the years.")
        assert result.ok, result.render_feedback()
        years = [
            float(node.string_value())
            for node in small_dblp_database.nodes_with_tag("year")
        ]
        expected = sum(years) / len(years)
        assert len(result.values()) == 1
        assert abs(float(result.values()[0]) - expected) < 1e-6

    def test_global_sum(self, bib_database):
        from repro.core.interface import NaLIX

        nalix = NaLIX(bib_database)
        result = nalix.ask("Return the sum of the prices.")
        assert result.ok, result.render_feedback()
        expected = sum(
            float(node.string_value())
            for node in bib_database.nodes_with_tag("price")
        )
        assert abs(float(result.values()[0]) - expected) < 1e-6

    def test_global_max(self, dblp_nalix, small_dblp_database):
        result = dblp_nalix.ask("Return the latest year.")
        assert result.ok, result.render_feedback()
        years = [
            int(node.string_value())
            for node in small_dblp_database.nodes_with_tag("year")
        ]
        assert len(result.values()) == 1
        assert int(float(result.values()[0])) == max(years)

    def test_grouped_aggregate_follows_fig6(self, dblp_nalix,
                                            small_dblp_database):
        """"the latest year of every article" groups per article (the
        paper's Fig. 6 outer-scope rule), yielding one value each."""
        result = dblp_nalix.ask("Return the latest year of every article.")
        assert result.ok, result.render_feedback()
        articles = small_dblp_database.document().root.child_elements(
            "article"
        )
        assert len(result.values()) == len(articles)
        gold = sorted(
            int(article.child_elements("year")[0].string_value())
            for article in articles
        )
        assert sorted(int(float(v)) for v in result.values()) == gold


class TestNegationSemantics:
    def test_not_greater_than(self, dblp_nalix, small_dblp_database):
        result = dblp_nalix.ask(
            "Return every book whose year is not greater than 1991."
        )
        assert result.ok, result.render_feedback()
        gold = sum(
            1
            for book in small_dblp_database.document().root.child_elements(
                "book"
            )
            if int(book.child_elements("year")[0].string_value()) <= 1991
        )
        assert len(result.nodes()) == gold

    def test_negation_complements_positive(self, dblp_nalix,
                                           small_dblp_database):
        positive = dblp_nalix.ask("Return every book published after 1991.")
        negative = dblp_nalix.ask(
            "Return every book whose year is not greater than 1991."
        )
        total = len(
            small_dblp_database.document().root.child_elements("book")
        )
        assert len(positive.nodes()) + len(negative.nodes()) == total
