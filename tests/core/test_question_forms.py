"""Tests for question-shaped inputs (wh-words, "how many", copulas)."""


class TestWhQuestions:
    def test_what_are(self, movie_nalix):
        result = movie_nalix.ask("What are the titles of the movies?")
        assert result.ok, result.render_feedback()
        assert len(result.values()) == 5

    def test_which(self, movie_nalix):
        result = movie_nalix.ask("Which movies are directed by Ron Howard?")
        assert result.ok
        assert len(result.nodes()) == 3

    def test_year_constraint(self, movie_nalix):
        result = movie_nalix.ask(
            "What are the titles of the movies of the year 2000?"
        )
        assert result.ok
        assert sorted(result.values()) == [
            "How the Grinch Stole Christmas",
            "Traffic",
        ]


class TestHowMany:
    def test_how_many_global(self, movie_nalix):
        result = movie_nalix.ask("How many movies are there?")
        assert result.ok, result.render_feedback()
        assert result.values() == ["5"]

    def test_how_many_constrained(self, movie_nalix):
        result = movie_nalix.ask(
            "How many movies are directed by Ron Howard?"
        )
        assert result.ok, result.render_feedback()
        assert set(result.values()) == {"3"}

    def test_how_many_uses_count(self, movie_nalix):
        result = movie_nalix.ask("How many movies are there?", evaluate=False)
        assert "count(" in result.xquery_text


class TestGroupingLayoutValues:
    """The Figure 1 layout nests movies under year elements whose value
    is the year's direct text — atomization must see '2000', not the
    concatenation with every nested title."""

    def test_year_equality(self, movie_nalix):
        result = movie_nalix.ask(
            "Return the title of every movie of the year 2001."
        )
        assert result.ok
        assert len(result.values()) == 3

    def test_year_inequality(self, movie_nalix):
        result = movie_nalix.ask(
            "Return the title of every movie of a year after 2000."
        )
        assert result.ok, result.render_feedback()
        assert len(result.values()) == 3
