"""Unit tests for parse-tree validation and feedback (Sec. 4)."""

from repro.core.token_types import TokenType, token_type


def validated(nalix, sentence):
    tree = nalix.classify(nalix.parse(sentence))
    feedback = nalix.validate(tree)
    return tree, feedback


def error_codes(feedback):
    return {message.code for message in feedback.errors}


class TestCommandChecks:
    def test_missing_command(self, movie_nalix):
        _, feedback = validated(movie_nalix, "movies by Ron Howard")
        assert "no-command" in error_codes(feedback)

    def test_empty_return(self, movie_nalix):
        _, feedback = validated(movie_nalix, "Return.")
        assert "empty-return" in error_codes(feedback)

    def test_valid_query_passes(self, movie_nalix):
        _, feedback = validated(
            movie_nalix, "Return the title of every movie."
        )
        assert feedback.ok


class TestUnknownTerms:
    def test_as_reported_with_suggestion(self, movie_nalix):
        _, feedback = validated(
            movie_nalix,
            "Return every director who has directed as many movies as has "
            "Ron Howard.",
        )
        unknown = [m for m in feedback.errors if m.code == "unknown-term"]
        assert unknown
        assert any("the same as" in (m.suggestion or "") for m in unknown)

    def test_unknown_name_lists_vocabulary(self, movie_nalix):
        _, feedback = validated(movie_nalix, "Return the isbn of every movie.")
        messages = [m for m in feedback.errors if m.code == "unknown-name"]
        assert messages
        assert "movie" in messages[0].suggestion


class TestImplicitNameTokens:
    def test_value_behind_connector_gets_implicit_nt(self, movie_nalix):
        tree, feedback = validated(
            movie_nalix, "Return every movie directed by Ron Howard."
        )
        assert feedback.ok
        implicit = [
            n for n in tree.preorder()
            if token_type(n) == TokenType.NT and n.implicit
        ]
        assert len(implicit) == 1
        assert implicit[0].tags == ["director"]
        assert implicit[0].implicit_value == "Ron Howard"

    def test_implicit_nt_is_parent_of_vt(self, movie_nalix):
        tree, _ = validated(
            movie_nalix, "Return every movie directed by Ron Howard."
        )
        vt = next(n for n in tree.preorder() if token_type(n) == TokenType.VT)
        assert vt.parent.implicit

    def test_copula_value_needs_no_implicit_nt(self, movie_nalix):
        tree, feedback = validated(
            movie_nalix,
            "Return every movie whose director is Ron Howard.",
        )
        assert feedback.ok
        assert not any(
            n.implicit for n in tree.preorder()
            if token_type(n) == TokenType.NT
        )

    def test_inequality_value_resolves_by_type(self, dblp_nalix):
        tree, feedback = validated(
            dblp_nalix, "Return every book published after 1991."
        )
        assert feedback.ok
        implicit = [
            n for n in tree.preorder()
            if token_type(n) == TokenType.NT and n.implicit
        ]
        assert len(implicit) == 1
        assert "year" in implicit[0].tags

    def test_unknown_value_reported(self, movie_nalix):
        _, feedback = validated(
            movie_nalix, "Return every movie directed by Jean Smith."
        )
        assert "unknown-value" in error_codes(feedback)


class TestWarnings:
    def test_pronoun_warning(self, movie_nalix):
        _, feedback = validated(
            movie_nalix, "Return every movie and their titles."
        )
        assert feedback.ok
        assert any(m.code == "pronoun" for m in feedback.warnings)

    def test_implied_sort_key_warning(self, dblp_nalix):
        _, feedback = validated(
            dblp_nalix,
            "Return the title of every book, in alphabetical order.",
        )
        assert feedback.ok
        assert any(m.code == "implied-sort-key" for m in feedback.warnings)


class TestOperatorChecks:
    def test_dangling_operator(self, movie_nalix):
        _, feedback = validated(
            movie_nalix, "Return every movie greater than."
        )
        assert "dangling-operator" in error_codes(feedback)

    def test_returned_value_flagged(self, movie_nalix):
        _, feedback = validated(movie_nalix, 'Return "Traffic".')
        assert "returned-value" in error_codes(feedback)


class TestTermExpansionAnnotations:
    def test_tags_attached_to_nts(self, movie_nalix):
        tree, _ = validated(movie_nalix, "Return the title of every film.")
        film = next(n for n in tree.preorder() if n.text == "film")
        assert film.tags == ["movie"]

    def test_feedback_render_format(self, movie_nalix):
        _, feedback = validated(movie_nalix, "Return the isbn of every movie.")
        rendered = feedback.render()
        assert rendered.startswith("Error:")
        assert "Suggestion:" in rendered
