"""Unit tests for the Table 6 grammar checker."""

import pytest

from repro.core.grammar import check_grammar, conforms
from repro.evaluation.tasks import TASKS


def classified(nalix, sentence):
    tree = nalix.classify(nalix.parse(sentence))
    nalix.validate(tree)
    return tree


class TestConformingQueries:
    @pytest.mark.parametrize(
        "sentence",
        [
            "Return every movie.",
            "Return the title of every movie.",
            "Return every movie directed by Ron Howard.",
            "Return the title of every movie, sorted by title.",
            "Return the number of movies directed by each director.",
            "Return every director, where the number of movies directed by "
            "the director is the same as the number of movies directed by "
            "Ron Howard.",
        ],
    )
    def test_valid_queries_conform(self, movie_nalix, sentence):
        assert conforms(classified(movie_nalix, sentence))

    def test_all_accepted_task_phrasings_conform(self, dblp_nalix):
        for task in TASKS:
            for phrasing in task.phrasings:
                if not phrasing.valid:
                    continue
                tree = classified(dblp_nalix, phrasing.text)
                assert conforms(tree), (task.task_id, phrasing.text)


class TestViolations:
    def test_missing_command_violates_q_production(self, movie_nalix):
        tree = classified(movie_nalix, "movies directed by Ron Howard")
        violations = check_grammar(tree)
        assert violations
        assert "command" in violations[0].reason

    def test_synthetic_bad_attachment(self, movie_nalix):
        tree = classified(movie_nalix, "Return the title of every movie.")
        # Force an OBT under an NT — not licensed by line 8.
        from repro.nlp.categories import Category
        from repro.nlp.parse_tree import ParseNode
        from repro.core.token_types import TokenType

        bad = ParseNode("sorted by", "sorted by", Category.ORDER, 99)
        bad.token_type = TokenType.OBT
        title = next(n for n in tree.preorder() if n.lemma == "title")
        title.attach(bad)
        violations = check_grammar(tree)
        assert any("sort phrase" in v.reason for v in violations)

    def test_unknown_nodes_skipped(self, movie_nalix):
        tree = classified(
            movie_nalix,
            "Return every director who has directed as many movies as has "
            "Ron Howard.",
        )
        # The "as" nodes are UNKNOWN; the checker leaves them to the
        # validator's unknown-term error rather than piling on.
        for violation in check_grammar(tree):
            assert violation.node.text != "as"
