"""ContextVar hygiene: no ask() path may leak ambient context.

Every activation in the stack (trace, plan stats, budget meter,
profiler spec, memory spec, fault tenant) sets a ContextVar on entry
and must reset it on *every* exit path — including queries that fail
inside the pipeline and exceptions that escape ``ask()`` entirely.  A
leaked ContextVar silently attaches one request's trace or budget to
the next request on the same thread.
"""

import pytest

from repro.obs.memory import activate_memory_tracking, current_memory_spec
from repro.obs.plan_stats import current_plan_stats
from repro.obs.profiler import current_profile_spec
from repro.obs.spans import current_trace
from repro.resilience.budget import active_meter
from repro.resilience.faults import current_fault_tenant, fault_scope

GETTERS = {
    "trace": current_trace,
    "plan_stats": current_plan_stats,
    "profile_spec": current_profile_spec,
    "memory_spec": current_memory_spec,
    "meter": active_meter,
    "fault_tenant": current_fault_tenant,
}


def ambient_context():
    return {name: getter() for name, getter in GETTERS.items()}


def assert_defaults():
    leaked = {k: v for k, v in ambient_context().items() if v is not None}
    assert not leaked, f"leaked ContextVars: {leaked}"


class TestAskResetsContext:
    def test_successful_ask(self, movie_nalix):
        assert_defaults()
        result = movie_nalix.ask("Return the title of every movie.")
        assert result.ok
        assert_defaults()

    def test_rejected_ask(self, movie_nalix):
        result = movie_nalix.ask("Return the isbn of every movie.")
        assert not result.ok
        assert_defaults()

    def test_pipeline_exception_is_contained_and_clean(
        self, movie_nalix, monkeypatch
    ):
        def boom(sentence):
            raise RuntimeError("seeded pipeline failure")

        monkeypatch.setattr(movie_nalix, "parse", boom)
        result = movie_nalix.ask("Return the title of every movie.")
        assert not result.ok
        assert_defaults()

    def test_exception_escaping_ask(self, movie_nalix, monkeypatch):
        """Even an exception that escapes ask() must not leak context."""

        def boom(result):
            raise RuntimeError("seeded audit failure")

        monkeypatch.setattr(movie_nalix, "_record", boom)
        with pytest.raises(RuntimeError, match="seeded audit failure"):
            movie_nalix.ask("Return the title of every movie.")
        assert_defaults()

    def test_failed_ask_with_all_activations(self, movie_nalix, monkeypatch):
        def boom(sentence):
            raise RuntimeError("seeded pipeline failure")

        monkeypatch.setattr(movie_nalix, "parse", boom)
        with activate_memory_tracking(), fault_scope("tenant-a"):
            result = movie_nalix.ask(
                "Return the title of every movie.", memory=True, timeout=5.0
            )
            assert not result.ok
            assert current_memory_spec() is not None
            assert current_fault_tenant() == "tenant-a"
        assert_defaults()


class TestActivationObjects:
    def test_exception_inside_block_still_resets(self):
        with pytest.raises(RuntimeError, match="inner"):
            with activate_memory_tracking():
                assert current_memory_spec() is not None
                raise RuntimeError("inner")
        assert current_memory_spec() is None

    def test_reentrant_activation_object(self):
        """Token stacks make the same activation object nestable."""
        activation = activate_memory_tracking()
        with activation:
            spec = current_memory_spec()
            with activation:
                assert current_memory_spec() is spec
            assert current_memory_spec() is spec
        assert current_memory_spec() is None

    def test_nested_fault_scopes(self):
        with fault_scope("outer"):
            with fault_scope("inner"):
                assert current_fault_tenant() == "inner"
            assert current_fault_tenant() == "outer"
        assert current_fault_tenant() is None
