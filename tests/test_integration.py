"""Cross-module integration tests: full flows through the whole stack."""

from repro.core.interface import NaLIX
from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database
from repro.evaluation.metrics import precision_recall
from repro.keyword_search.engine import KeywordSearchEngine
from repro.xquery.evaluator import evaluate_query


class TestEndToEndAgainstGold:
    """NL answers must equal answers computed directly in Python."""

    def test_addison_wesley_titles(self, small_dblp_database, dblp_nalix):
        document = small_dblp_database.document()
        gold = {
            book.child_elements("title")[0].string_value()
            for book in document.root.child_elements("book")
            if book.child_elements("publisher")[0].string_value()
            == "Addison-Wesley"
        }
        result = dblp_nalix.ask(
            "Return the title of every book published by Addison-Wesley."
        )
        assert result.ok
        assert set(result.values()) == gold

    def test_count_matches_python(self, small_dblp_database, dblp_nalix):
        document = small_dblp_database.document()
        gold = len(document.root.child_elements("article"))
        result = dblp_nalix.ask("Return the total number of articles.")
        assert result.ok
        assert result.values() == [str(gold)]

    def test_year_filter_matches_python(self, small_dblp_database,
                                        dblp_nalix):
        document = small_dblp_database.document()
        gold = sum(
            1
            for book in document.root.child_elements("book")
            if int(book.child_elements("year")[0].string_value()) > 2000
        )
        result = dblp_nalix.ask("Return every book published after 2000.")
        assert result.ok
        assert len(result.nodes()) == gold

    def test_grouped_counts_match_python(self, small_dblp_database,
                                         dblp_nalix):
        document = small_dblp_database.document()
        by_publisher = {}
        for book in document.root.child_elements("book"):
            name = book.child_elements("publisher")[0].string_value()
            by_publisher[name] = by_publisher.get(name, 0) + 1
        result = dblp_nalix.ask(
            "Return the number of books published by each publisher."
        )
        assert result.ok
        counts = sorted(int(v) for v in result.values())
        gold = sorted(
            by_publisher[
                book.child_elements("publisher")[0].string_value()
            ]
            for book in document.root.child_elements("book")
        )
        assert counts == gold


class TestNaLIXVsKeyword:
    def test_nl_beats_keywords_on_structured_task(self, small_dblp_database):
        nalix = NaLIX(small_dblp_database)
        keyword = KeywordSearchEngine(small_dblp_database)
        document = small_dblp_database.document()
        gold = []
        for book in document.root.child_elements("book"):
            if book.child_elements("publisher")[0].string_value() == (
                "Addison-Wesley"
            ):
                gold.append(book.child_elements("title")[0])

        nl = nalix.ask(
            "Return the title of every book published by Addison-Wesley."
        )
        nl_p, nl_r = precision_recall(nl.distinct_items(), gold)
        kw_p, kw_r = precision_recall(
            keyword.search("title book Addison-Wesley"), gold
        )
        assert nl_p >= kw_p
        assert nl_r >= kw_r


class TestMultiDocumentDatabase:
    def test_doc_function_selects_document(self):
        database = Database()
        database.load_text("<a><x>1</x></a>", name="one.xml")
        database.load_text("<b><x>2</x></b>", name="two.xml")
        first = evaluate_query(database, 'for $x in doc("one.xml")//x return $x')
        second = evaluate_query(database, 'for $x in doc("two.xml")//x return $x')
        assert [n.string_value() for n in first] == ["1"]
        assert [n.string_value() for n in second] == ["2"]

    def test_nalix_on_named_document(self):
        database = Database()
        database.load_text(
            "<movies><movie><title>A</title><director>D</director></movie>"
            "</movies>",
            name="movies.xml",
        )
        database.load_text("<other><thing>x</thing></other>", name="o.xml")
        nalix = NaLIX(database, document_name="movies.xml")
        result = nalix.ask("Return the title of every movie.")
        assert result.ok
        assert result.values() == ["A"]


class TestFeedbackLoop:
    def test_two_turn_reformulation(self, movie_nalix):
        """The Sec. 4 interaction: reject with suggestion, then accept."""
        first = movie_nalix.ask(
            "Return every director who has directed as many movies as has "
            "Ron Howard."
        )
        assert not first.ok
        suggestion = next(
            m.suggestion for m in first.errors if m.code == "unknown-term"
        )
        assert "the same as" in suggestion

        second = movie_nalix.ask(
            "Return every director, where the number of movies directed by "
            "the director is the same as the number of movies directed by "
            "Ron Howard."
        )
        assert second.ok
        assert sorted(set(second.values())) == ["Ron Howard"]

    def test_multi_sentence_rejected_with_guidance(self, movie_nalix):
        result = movie_nalix.ask(
            "Return every movie. Return every director."
        )
        assert not result.ok
        assert any(m.code == "multi-sentence" for m in result.errors)

    def test_abbreviations_not_multi_sentence(self, movie_nalix):
        result = movie_nalix.ask(
            "Return every movie directed by Ron Howard."
        )
        assert result.ok

    def test_disjunction_guidance(self, movie_nalix):
        result = movie_nalix.ask(
            "Return every movie directed by Ron Howard or Peter Jackson."
        )
        assert not result.ok
        assert any(
            "split" in (m.suggestion or "") for m in result.errors
        )


class TestScale:
    def test_larger_collection_still_fast(self):
        import time

        database = Database()
        database.load_document(
            generate_dblp(DblpConfig(books=600, articles=1200))
        )
        nalix = NaLIX(database)
        started = time.perf_counter()
        result = nalix.ask(
            "Return the year and title of every book published by "
            "Addison-Wesley after 1991."
        )
        elapsed = time.perf_counter() - started
        assert result.ok
        assert result.values()
        assert elapsed < 5.0
