"""Unit tests for the meet operator."""

from repro.data import movies_document
from repro.keyword_search.meet import meet_nodes, nearest_concepts


def nodes_by_tag(document, tag):
    return [node for node in document.iter_elements() if node.tag == tag]


class TestMeetNodes:
    def test_title_director_meets_are_movies(self):
        document = movies_document()
        titles = nodes_by_tag(document, "title")
        directors = nodes_by_tag(document, "director")
        meets = meet_nodes(titles, directors)
        assert {node.tag for node in meets} == {"movie"}
        assert len(meets) == 5

    def test_meet_with_self_set(self):
        document = movies_document()
        titles = nodes_by_tag(document, "title")
        meets = meet_nodes(titles, titles)
        # Nearest other title shares a year group (or the root).
        assert all(node.tag in ("year", "movies") for node in meets)

    def test_empty_sets(self):
        document = movies_document()
        titles = nodes_by_tag(document, "title")
        assert meet_nodes(titles, []) == []
        assert meet_nodes([], []) == []


class TestNearestConcepts:
    def test_fold_three_sets(self):
        document = movies_document()
        sets = [
            nodes_by_tag(document, "title"),
            nodes_by_tag(document, "director"),
            nodes_by_tag(document, "year"),
        ]
        concepts = nearest_concepts(sets)
        assert concepts
        assert all(node.tag in ("year", "movies") for node in concepts)

    def test_deepest_first(self):
        document = movies_document()
        sets = [
            nodes_by_tag(document, "title"),
            nodes_by_tag(document, "director"),
        ]
        concepts = nearest_concepts(sets)
        depths = [node.depth for node in concepts]
        assert depths == sorted(depths, reverse=True)

    def test_empty_set_short_circuits(self):
        document = movies_document()
        assert nearest_concepts([nodes_by_tag(document, "title"), []]) == []

    def test_limit(self):
        document = movies_document()
        sets = [
            nodes_by_tag(document, "title"),
            nodes_by_tag(document, "director"),
        ]
        assert len(nearest_concepts(sets, limit=2)) == 2
