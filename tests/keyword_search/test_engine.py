"""Unit tests for the keyword-search engine (the study's baseline)."""

import pytest

from repro.keyword_search.engine import KeywordSearchEngine


@pytest.fixture()
def engine(movie_database):
    return KeywordSearchEngine(movie_database)


class TestTermSplitting:
    def test_stopwords_removed(self, engine):
        assert engine.split_terms("find all the movies of Ron") == [
            "movies",
            "Ron",
        ]

    def test_quoted_phrases_kept_whole(self, engine):
        terms = engine.split_terms('movie "Gone with the Wind"')
        assert terms == ["movie", "Gone with the Wind"]

    def test_quoted_stopwords_kept(self, engine):
        assert engine.split_terms('"the"') == ["the"]

    def test_punctuation_stripped(self, engine):
        assert engine.split_terms("title, director.") == ["title", "director"]


class TestMatching:
    def test_tag_name_match(self, engine):
        nodes = engine.match_nodes("directors")
        assert len(nodes) == 5
        assert all(node.tag == "director" for node in nodes)

    def test_value_match(self, engine):
        nodes = engine.match_nodes("Traffic")
        assert [node.tag for node in nodes] == ["title"]

    def test_value_and_tag_union(self, engine):
        # "year" matches the year elements (tag) only.
        assert len(engine.match_nodes("year")) == 2

    def test_no_match(self, engine):
        assert engine.match_nodes("zebra") == []


class TestSearch:
    def test_single_term_returns_matches(self, engine):
        results = engine.search("directors")
        assert len(results) == 5

    def test_two_terms_meet_at_movie(self, engine):
        results = engine.search("title director")
        assert {node.tag for node in results} == {"movie"}

    def test_value_constrained_search(self, engine):
        results = engine.search('director "Traffic"')
        assert results
        assert results[0].tag == "movie"
        assert "Soderbergh" in results[0].string_value()

    def test_root_meets_excluded(self, engine):
        results = engine.search("Traffic Tribute")
        # The two titles only co-occur at year/root level; the root is
        # filtered, year-level meets may remain.
        assert all(node.parent is not None for node in results)

    def test_no_results_for_unmatched_term(self, engine):
        assert engine.search("movie zebra") == []

    def test_result_limit(self, movie_database):
        engine = KeywordSearchEngine(movie_database, result_limit=2)
        assert len(engine.search("directors")) <= 2

    def test_empty_query(self, engine):
        assert engine.search("") == []
        assert engine.search("the of") == []
