"""The srclint static passes: seeded fixtures, self-lint, suppressions."""

import json
import textwrap

import pytest

from repro.analysis.lockorder import LockOrder, load_lock_order
from repro.analysis.srclint import (
    SRC_RULES,
    lint_paths,
    load_suppressions,
)
from repro.cli import main

FIXTURES = "tests/analysis/srclint_fixtures"

#: fixture module -> the one rule id it must produce, per the issue's
#: acceptance criteria (inversion, leaked ContextVar, wall-clock
#: deadline, joinless daemon thread).
SEEDED = {
    "lock_inversion.py": "SC001",
    "leaked_contextvar.py": "SV002",
    "wall_clock_deadline.py": "SK001",
    "joinless_daemon.py": "SR001",
}


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestSeededFixtures:
    @pytest.mark.parametrize("fixture,rule", sorted(SEEDED.items()))
    def test_exactly_the_expected_rule(self, capsys, fixture, rule):
        code, out = run(
            capsys, "lint-src", f"{FIXTURES}/{fixture}",
            "--format", "json", "--no-default-suppressions",
        )
        assert code == 1
        document = json.loads(out)
        (finding,) = document["findings"]
        assert finding["rule"] == rule
        assert finding["severity"] == "error"
        assert finding["path"].endswith(fixture)

    def test_github_format_lines(self, capsys):
        code, out = run(
            capsys, "lint-src", f"{FIXTURES}/lock_inversion.py",
            "--format", "github", "--no-default-suppressions",
        )
        assert code == 1
        assert "::error file=" in out
        assert "SC001" in out


class TestSelfLint:
    def test_committed_tree_is_strict_clean(self):
        report = lint_paths()
        assert report.ok(strict=True), "\n" + report.render_text()

    def test_cli_strict_exit_zero(self, capsys):
        code, out = run(capsys, "lint-src", "--strict")
        assert code == 0
        assert "0 errors" in out

    def test_every_default_suppression_still_fires(self):
        """A suppression whose finding no longer exists is stale noise."""
        unsuppressed = lint_paths(use_default_suppressions=False)
        suppressed = lint_paths()
        fired = (len(unsuppressed.errors) + len(unsuppressed.warnings)) - (
            len(suppressed.errors) + len(suppressed.warnings))
        assert fired == len(suppressed.suppressed)

    def test_rule_catalog_is_printable(self, capsys):
        code, out = run(capsys, "lint-src", "--rules")
        assert code == 0
        for rule_id in SRC_RULES:
            assert rule_id in out


class TestSuppressions:
    def test_suppress_file(self, capsys, tmp_path):
        suppress = tmp_path / "suppress.txt"
        suppress.write_text(
            "SK001  wall_clock_deadline.py  remaining  fixture reason\n"
        )
        code, out = run(
            capsys, "lint-src", f"{FIXTURES}/wall_clock_deadline.py",
            "--format", "json", "--no-default-suppressions",
            "--suppress-file", str(suppress),
        )
        assert code == 0
        document = json.loads(out)
        assert document["findings"] == []
        assert document["suppressed"] == 1

    def test_wildcard_symbol(self, tmp_path):
        suppress = tmp_path / "suppress.txt"
        suppress.write_text("SR001  joinless_daemon.py  fire_*  reason\n")
        report = lint_paths(
            [f"{FIXTURES}/joinless_daemon.py"],
            suppress_path=str(suppress), use_default_suppressions=False,
        )
        assert report.ok() and len(report.suppressed) == 1

    def test_inline_ignore(self, tmp_path):
        target = tmp_path / "inline.py"
        target.write_text(textwrap.dedent("""\
            import time


            def remaining(deadline_seconds):
                started = time.time()
                return deadline_seconds - (time.time() - started)  # srclint: ignore[SK001]
        """))
        report = lint_paths([str(target)], use_default_suppressions=False)
        assert report.ok(strict=True)

    def test_malformed_suppress_line_is_loud(self, tmp_path):
        suppress = tmp_path / "suppress.txt"
        suppress.write_text("SK001 only-two-fields\n")
        with pytest.raises(ValueError, match="suppress"):
            load_suppressions(str(suppress))


class TestMorePasses:
    """Rules without a committed fixture file, seeded from tmp sources."""

    def lint_source(self, tmp_path, source):
        target = tmp_path / "sample.py"
        target.write_text(textwrap.dedent(source))
        report = lint_paths([str(target)], use_default_suppressions=False)
        return [f.rule_id for f in report.errors + report.warnings]

    def test_blocking_call_under_lock(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            import time

            from repro.analysis.racecheck import named_lock

            _MU = named_lock("obs.audit")


            def slow():
                with _MU:
                    time.sleep(0.1)
        """)
        assert rules == ["SC002"]

    def test_raw_lock_is_a_warning(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            import threading

            _MU = threading.Lock()
        """)
        assert rules == ["SC004"]

    def test_undeclared_lock_name(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            from repro.analysis.racecheck import named_lock

            _MU = named_lock("not.in.the.hierarchy")
        """)
        assert rules == ["SC003"]

    def test_discarded_contextvar_token(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            from contextvars import ContextVar

            _VAR = ContextVar("sample", default=None)


            def set_and_reset(value):
                _VAR.set(value)
                _VAR.reset(None)
        """)
        assert "SV001" in rules

    def test_reset_outside_finally_is_a_warning(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            from contextvars import ContextVar

            _VAR = ContextVar("sample", default=None)


            def scoped(value):
                token = _VAR.set(value)
                do_work()
                _VAR.reset(token)
        """)
        assert rules == ["SV003"]

    def test_mixed_clock_arithmetic(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            import time


            def elapsed(started_wall):
                return time.monotonic() - started_wall + time.time()
        """)
        assert rules == ["SK002"]

    def test_clean_monotonic_code_passes(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            import time


            def remaining(deadline_seconds):
                started = time.monotonic()
                return deadline_seconds - (time.monotonic() - started)
        """)
        assert rules == []

    def test_unbounded_growth_under_lock(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            from repro.analysis.racecheck import named_lock


            class Registry:
                def __init__(self):
                    self._lock = named_lock("serve.registry")
                    self._entries = {}

                def add(self, key, value):
                    with self._lock:
                        self._entries[key] = value
        """)
        assert rules == ["SR002"]

    def test_len_guard_bounds_growth(self, tmp_path):
        rules = self.lint_source(tmp_path, """\
            from repro.analysis.racecheck import named_lock


            class Registry:
                def __init__(self):
                    self._lock = named_lock("serve.registry")
                    self._entries = {}

                def add(self, key, value):
                    with self._lock:
                        if len(self._entries) < 100:
                            self._entries[key] = value
        """)
        assert rules == []


class TestLockOrder:
    def test_declared_hierarchy_loads(self):
        order = load_lock_order()
        assert len(order.order) >= 15
        assert order.order[0] == "serve.admission"
        assert "time.sleep" in order.blocking_calls

    def test_allows_inner_after_outer(self):
        order = LockOrder(["a", "b", "c"], [])
        assert order.allows("a", "b")
        assert not order.allows("b", "a")
        assert not order.allows("b", "b")
        # undeclared names are never judged
        assert order.allows("b", "mystery")
        assert order.allows("mystery", "b")

    def test_minimal_toml_parser(self, tmp_path):
        path = tmp_path / "lockorder.toml"
        path.write_text(
            '# comment\n[hierarchy]\norder = [\n  "x",  # outer\n'
            '  "y",\n]\n[blocking]\ncalls = ["time.sleep"]\n'
        )
        order = load_lock_order(str(path))
        assert order.order == ["x", "y"]
        assert order.blocking_calls == ["time.sleep"]
