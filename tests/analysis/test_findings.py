"""Finding / AnalysisReport plumbing: renderings and provenance linking."""

import json

import pytest

from repro.analysis.findings import (
    ERROR,
    WARNING,
    AnalysisReport,
    Finding,
    attach_clause_provenance,
)


def make_report():
    report = AnalysisReport(subject="for $x in ... return $x")
    report.add(
        Finding("QS001", ERROR, "variable $y is unbound",
                path="query/where", fragment="$y")
    )
    report.add(
        Finding("QS003", WARNING, "$z is never referenced",
                path="query/let", fragment="$z")
    )
    return report


class TestFinding:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Finding("QS001", "fatal", "boom")

    def test_render_cites_provenance_words(self):
        finding = Finding(
            "QS001", ERROR, "bad clause", path="query/where",
            token_ids=[3, 5], words=["price", "book"],
        )
        rendered = finding.render()
        assert "QS001" in rendered
        assert "price(3), book(5)" in rendered

    def test_to_dict_roundtrips_through_json(self):
        finding = Finding("QT001", WARNING, "msg", fragment="$x > 'a'")
        entry = json.loads(json.dumps(finding.to_dict()))
        assert entry["rule"] == "QT001"
        assert entry["severity"] == "warning"
        assert entry["fragment"] == "$x > 'a'"


class TestAnalysisReport:
    def test_severity_views_and_ok(self):
        report = make_report()
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok
        assert AnalysisReport().ok

    def test_summary_and_rule_ids(self):
        report = make_report()
        assert report.rule_ids() == ["QS001", "QS003"]
        assert report.summary() == {
            "errors": 1, "warnings": 1, "rules": ["QS001", "QS003"],
        }

    def test_render_text(self):
        assert AnalysisReport().render_text() == "ok (no findings)"
        text = make_report().render_text()
        assert "error QS001" in text
        assert "warning QS003" in text

    def test_github_lines(self):
        lines = make_report().github_lines(context="Q1[0]")
        assert lines[0].startswith("::error title=QS001::")
        assert lines[1].startswith("::warning title=QS003::")
        assert all("[Q1[0]]" in line for line in lines)

    def test_container_protocol(self):
        report = make_report()
        assert len(report) == 2
        assert [f.rule_id for f in report] == ["QS001", "QS003"]


class TestClauseProvenance:
    class Record:
        def __init__(self, fragment, token_ids, words):
            self.fragment = fragment
            self.token_ids = token_ids
            self.words = words

    def test_fragment_match_inherits_tokens(self):
        report = AnalysisReport()
        finding = report.add(
            Finding("QS001", ERROR, "unbound", fragment="$y")
        )
        attach_clause_provenance(
            report,
            [self.Record("$y = 'Morrison'", [7], ["Morrison"])],
        )
        assert finding.token_ids == [7]
        assert finding.words == ["Morrison"]

    def test_existing_tokens_kept_and_no_match_is_noop(self):
        report = AnalysisReport()
        pinned = report.add(
            Finding("QS001", ERROR, "unbound", fragment="$y",
                    token_ids=[1], words=["w"])
        )
        unmatched = report.add(
            Finding("QS001", ERROR, "unbound", fragment="$zzz")
        )
        attach_clause_provenance(
            report, [self.Record("$y = 1", [9], ["nine"])]
        )
        assert pinned.token_ids == [1]
        assert unmatched.token_ids == []
