"""Seeded-violation fixtures for the srclint static passes.

Each module here is deliberately wrong in exactly one way and must
produce exactly one finding with the rule id named in its docstring —
the acceptance tests in ``test_srclint.py`` lint them one at a time
and assert on the JSON output.  They are never imported at runtime.
"""
