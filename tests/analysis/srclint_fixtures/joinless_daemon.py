"""Seeded violation: daemon thread started, never joined -> SR001."""

import threading


def fire_and_forget(task):
    thread = threading.Thread(target=task, daemon=True)
    thread.start()
    return thread
