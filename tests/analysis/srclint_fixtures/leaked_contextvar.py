"""Seeded violation: ContextVar set with no reset anywhere -> SV002."""

from contextvars import ContextVar

_VAR = ContextVar("srclint_fixture_var", default=None)


def leak(value):
    token = _VAR.set(value)
    return token
