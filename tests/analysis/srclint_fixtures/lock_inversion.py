"""Seeded violation: lock-order inversion -> SC001.

``obs.metrics.metric`` ranks below ``serve.admission`` in the declared
hierarchy, so acquiring the admission lock while holding the metric
lock inverts the order.
"""

from repro.analysis.racecheck import named_lock

_METRIC = named_lock("obs.metrics.metric")
_ADMISSION = named_lock("serve.admission")


def inverted():
    with _METRIC:
        with _ADMISSION:
            return 1
