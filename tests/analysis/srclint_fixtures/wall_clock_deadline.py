"""Seeded violation: wall-clock deadline arithmetic -> SK001."""

import time


def remaining(deadline_seconds):
    started = time.time()
    return deadline_seconds - (time.time() - started)
