"""Pipeline consistency linter: the QP rules and the import-time gate.

The real tables must lint clean; each check is then re-run against a
deliberately corrupted copy of its table to prove the rule fires.
"""

import pytest

from repro.analysis import (
    PipelineInconsistency,
    check_pipeline_consistency,
    ensure_pipeline_consistent,
)
from repro.analysis.consistency import (
    check_classifier_rules,
    check_grammar_tables,
    check_lexicon,
    check_lexicon_payloads,
)
from repro.analysis.findings import AnalysisReport
from repro.core.classifier import CLASSIFICATION_RULES
from repro.core.grammar import ALLOWED_PARENTS, HUMAN_NAMES, PRODUCTIONS
from repro.core.token_types import TokenType


def fresh_report():
    return AnalysisReport(subject="test tables")


class TestRealTablesAreConsistent:
    def test_no_findings(self):
        report = check_pipeline_consistency(refresh=True)
        assert report.findings == []

    def test_ensure_passes(self):
        ensure_pipeline_consistent()  # must not raise

    def test_report_is_cached_per_process(self):
        first = check_pipeline_consistency()
        assert check_pipeline_consistency() is first


class TestQP001LexiconConflict:
    def test_conflicting_claim_fires(self):
        report = check_lexicon(
            fresh_report(),
            tables={
                "COMMAND_PHRASES (CMT)": {"return": "CMT"},
                "NEGATION_WORDS (NEG)": {"return": "NEG"},
            },
        )
        assert report.rule_ids() == ["QP001"]

    def test_disjoint_tables_are_silent(self):
        report = check_lexicon(
            fresh_report(),
            tables={
                "A": {"return": "CMT"},
                "B": {"not": "NEG"},
            },
        )
        assert report.findings == []


class TestQP002GrammarTableIncomplete:
    def test_symbol_missing_from_one_table_fires(self):
        broken = dict(HUMAN_NAMES)
        del broken[TokenType.NEG]
        report = check_grammar_tables(fresh_report(), human_names=broken)
        assert "QP002" in report.rule_ids()

    def test_complete_tables_are_silent(self):
        report = check_grammar_tables(fresh_report())
        assert report.findings == []


class TestQP003UnproducibleSymbol:
    def test_unknown_parent_fires(self):
        broken = dict(ALLOWED_PARENTS)
        broken[TokenType.NT] = set(broken[TokenType.NT]) | {"GHOST"}
        report = check_grammar_tables(
            fresh_report(),
            allowed_parents=broken,
            productions=dict(PRODUCTIONS, GHOST="fake"),
            human_names=dict(HUMAN_NAMES, GHOST="ghost"),
        )
        assert "QP003" in report.rule_ids()


class TestQP004UntranslatablePayload:
    def test_bad_operator_symbol_fires(self):
        report = check_lexicon_payloads(
            fresh_report(), operator_phrases={"approximately": "~="}
        )
        assert report.rule_ids() == ["QP004"]

    def test_bad_aggregate_fires(self):
        report = check_lexicon_payloads(
            fresh_report(), function_phrases={"median": "median"}
        )
        assert report.rule_ids() == ["QP004"]

    def test_non_boolean_sort_direction_fires(self):
        report = check_lexicon_payloads(
            fresh_report(), order_phrases={"sorted by": "asc"}
        )
        assert report.rule_ids() == ["QP004"]

    def test_real_payloads_are_silent(self):
        report = check_lexicon_payloads(fresh_report())
        assert report.findings == []


class TestQP005ClassifierRuleGap:
    def test_missing_token_type_fires(self):
        rules = dict(CLASSIFICATION_RULES)
        del rules[TokenType.NT]
        report = check_classifier_rules(fresh_report(), rules=rules)
        assert "QP005" in report.rule_ids()

    def test_phantom_rule_fires(self):
        rules = dict(CLASSIFICATION_RULES, GHOST="no such type")
        report = check_classifier_rules(fresh_report(), rules=rules)
        assert "QP005" in report.rule_ids()


class TestImportTimeGate:
    def test_inconsistency_raises_with_report(self):
        report = fresh_report()
        check_lexicon(
            report,
            tables={"A": {"x": 1}, "B": {"x": 2}},
        )
        error = PipelineInconsistency(report)
        assert "QP001" in {f.rule_id for f in error.report.findings}
        assert "pipeline consistency error" in str(error)

    def test_interface_import_runs_the_check(self):
        # The interface module calls ensure_pipeline_consistent() at
        # import; with the real tables that must have succeeded.
        import repro.core.interface  # noqa: F401

        assert check_pipeline_consistency().ok


@pytest.mark.parametrize("severity", ["error"])
def test_all_qp_rules_are_errors(severity):
    from repro.analysis import RULES

    for rule_id, entry in RULES.items():
        if rule_id.startswith("QP"):
            assert entry.severity == severity
