"""Runtime racecheck: deterministic deadlock units, order checks, holds.

The deadlock tests force an exact interleaving with events and the
``_before_block`` test hook — no sleeps, no timing assumptions.
"""

import threading

import pytest

from repro.analysis import racecheck
from repro.analysis.racecheck import (
    CheckedLock,
    DeadlockError,
    LockOrderError,
    locks_held,
    named_lock,
    note_blocking,
)


@pytest.fixture(autouse=True)
def clean_racecheck():
    """Isolate each test; restore the session's enabled state after."""
    was_enabled = racecheck.enabled()
    racecheck.reset()
    yield
    if was_enabled:
        racecheck.enable()
    else:
        racecheck.disable()
    racecheck.reset()


class TestFactory:
    def test_disabled_returns_plain_locks(self):
        racecheck.disable()
        lock = named_lock("serve.admission")
        assert not isinstance(lock, CheckedLock)
        with lock:
            pass

    def test_enabled_returns_checked_locks(self):
        racecheck.enable()
        lock = named_lock("serve.admission")
        assert isinstance(lock, CheckedLock)
        with lock:
            assert locks_held() == ["serve.admission"]
        assert locks_held() == []

    def test_rlock_reentrancy_keeps_one_hold(self):
        racecheck.enable()
        lock = named_lock("test.rlock", rlock=True)
        with lock:
            with lock:
                assert locks_held() == ["test.rlock"]
            # the inner release must not end the hold
            assert locks_held() == ["test.rlock"]
            assert lock.locked()
        assert locks_held() == []
        assert not lock.locked()


class TestDeadlockDetection:
    def test_two_thread_cycle_raises_instead_of_hanging(self):
        """Forced A->B / B->A interleaving; the cycle is caught pre-block.

        main holds A and will want B; the worker holds B and wants A.
        The ``_before_block`` hook on A fires after the worker's
        wait-for edge is registered, so by the time main tries B the
        cycle is fully present in the graph — deterministically.
        """
        racecheck.enable()
        lock_a = CheckedLock("test.cycle.a")
        lock_b = CheckedLock("test.cycle.b")
        main_tid = threading.get_ident()
        worker_wants_a = threading.Event()

        def before_block_on_a():
            if threading.get_ident() != main_tid:
                worker_wants_a.set()

        lock_a._before_block = before_block_on_a
        worker_errors = []

        def worker():
            with lock_b:
                try:
                    with lock_a:  # blocks until main releases A
                        pass
                except Exception as error:  # pragma: no cover - bug path
                    worker_errors.append(error)

        with lock_a:
            thread = threading.Thread(target=worker, name="rc-worker")
            thread.start()
            assert worker_wants_a.wait(10.0)
            with pytest.raises(DeadlockError, match="test.cycle"):
                lock_b.acquire()
        thread.join(10.0)
        assert not thread.is_alive()
        assert worker_errors == []
        report = racecheck.report()
        assert report["violations"]["cycle"] == 1
        (event,) = [e for e in report["events"] if e["kind"] == "cycle"]
        assert event["path"] == ["test.cycle.b", "test.cycle.a"]

    def test_uncontended_nesting_is_not_a_cycle(self):
        racecheck.enable()
        lock_a = CheckedLock("test.nest.a")
        lock_b = CheckedLock("test.nest.b")
        with lock_a:
            with lock_b:
                pass
        assert racecheck.report()["violations"]["cycle"] == 0


class TestOrderChecking:
    def test_inversion_is_recorded(self):
        racecheck.enable()
        outer = CheckedLock("serve.admission")
        inner = CheckedLock("obs.metrics.registry")
        with inner:
            with outer:
                pass
        report = racecheck.report()
        assert report["violations"]["order"] == 1
        (event,) = [e for e in report["events"] if e["kind"] == "order"]
        assert event["acquiring"] == "serve.admission"
        assert event["holding"] == "obs.metrics.registry"

    def test_declared_order_is_clean(self):
        racecheck.enable()
        outer = CheckedLock("serve.admission")
        inner = CheckedLock("obs.metrics.registry")
        with outer:
            with inner:
                pass
        assert racecheck.report()["violations"]["order"] == 0

    def test_raise_mode_raises(self):
        racecheck.enable(raise_on_order=True)
        outer = CheckedLock("serve.admission")
        inner = CheckedLock("obs.metrics.registry")
        with inner:
            with pytest.raises(LockOrderError, match="inversion"):
                outer.acquire()

    def test_undeclared_names_are_not_judged(self):
        racecheck.enable(raise_on_order=True)
        with CheckedLock("test.anon.inner"):
            with CheckedLock("test.anon.outer"):
                pass
        assert racecheck.report()["violations"]["order"] == 0


class TestHoldAccounting:
    def test_hold_time_and_threshold(self, monkeypatch):
        """A fake monotonic clock makes the 2 s hold deterministic."""
        racecheck.enable()
        ticks = iter([10.0, 12.0])
        monkeypatch.setattr(racecheck, "_monotonic", lambda: next(ticks))
        lock = CheckedLock("test.hold")
        with lock:
            pass
        report = racecheck.report()
        stats = report["holds"]["test.hold"]
        assert stats["count"] == 1
        assert stats["max_ms"] == 2000.0
        # 2 s exceeds the 1 s default REPRO_RACECHECK_MAX_HOLD
        assert report["violations"]["hold"] == 1

    def test_fast_hold_is_clean(self):
        racecheck.enable()
        lock = CheckedLock("test.fast")
        with lock:
            pass
        report = racecheck.report()
        assert report["holds"]["test.fast"]["count"] == 1
        assert report["violations"]["hold"] == 0


class TestBlockingEntryPoints:
    def test_note_blocking_under_lock(self):
        racecheck.enable()
        lock = CheckedLock("test.blocking")
        with lock:
            note_blocking("unit.test")
        report = racecheck.report()
        assert report["violations"]["blocking"] == 1
        (event,) = [e for e in report["events"] if e["kind"] == "blocking"]
        assert event["call"] == "unit.test"
        assert event["holding"] == ["test.blocking"]

    def test_note_blocking_without_lock_is_clean(self):
        racecheck.enable()
        note_blocking("unit.test")
        assert racecheck.report()["violations"]["blocking"] == 0

    def test_note_blocking_disabled_is_noop(self):
        racecheck.disable()
        note_blocking("unit.test")
        assert racecheck.report()["violations"]["blocking"] == 0


class TestReport:
    def test_shape_and_reset(self):
        racecheck.enable()
        with CheckedLock("test.shape"):
            pass
        report = racecheck.report()
        assert report["enabled"] is True
        assert report["acquisitions"] >= 1
        assert set(report["violations"]) == {
            "order", "cycle", "hold", "blocking"
        }
        assert report["violations_total"] == 0
        racecheck.reset()
        cleared = racecheck.report()
        assert cleared["acquisitions"] == 0
        assert cleared["holds"] == {}
        assert cleared["events"] == []
