"""The ``repro lint`` subcommand: inputs, formats, exit codes."""

import json

import pytest

from repro.cli import main

CLEAN_XQ = (
    'for $b in doc("bib.xml")//book, $t in doc("bib.xml")//title '
    "where mqf($b, $t) return $t"
)
UNBOUND_XQ = 'for $b in doc("bib.xml")//book where $ghost = 1 return $b'
ONE_ARG_MQF_XQ = 'for $b in doc("bib.xml")//book where mqf($b) return $b'


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestXQueryInputs:
    def test_clean_query_exits_zero(self, capsys):
        code, out = run(capsys, "lint", "--xquery", CLEAN_XQ)
        assert code == 0
        assert "0 error(s)" in out

    def test_unbound_variable_exits_nonzero(self, capsys):
        code, out = run(capsys, "lint", "--xquery", UNBOUND_XQ)
        assert code == 1
        assert "QS001" in out

    def test_one_arg_mqf_exits_nonzero(self, capsys):
        code, out = run(capsys, "lint", "--xquery", ONE_ARG_MQF_XQ)
        assert code == 1
        assert "QM001" in out

    def test_unparseable_xquery_exits_nonzero(self, capsys):
        code, out = run(capsys, "lint", "--xquery", "for for for")
        assert code == 1
        assert "unparseable" in out


class TestEnglishInputs:
    def test_single_sentence(self, capsys):
        code, out = run(
            capsys, "lint", "--data", "movies",
            "Return the title of every movie.",
        )
        assert code == 0

    def test_rejected_sentence_fails_the_lint(self, capsys):
        code, out = run(
            capsys, "lint", "--data", "movies",
            "Return the isbn of every movie.",
        )
        assert code == 1
        assert "did not reach the analyzer" in out

    def test_stdin_batch(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                "Return the title of every movie.\n"
                "Return every movie directed by Ron Howard.\n"
            ),
        )
        code, out = run(capsys, "lint", "--data", "movies", "--stdin")
        assert code == 0
        assert "linted 2 subject(s)" in out


class TestBundledSources:
    def test_self_check(self, capsys):
        code, out = run(capsys, "lint", "--self")
        assert code == 0
        assert "linted 1 subject(s)" in out

    @pytest.mark.slow
    def test_tasks(self, capsys):
        code, out = run(capsys, "lint", "--tasks", "--books", "20")
        assert code == 0
        assert "0 error(s)" in out

    @pytest.mark.slow
    def test_default_is_self_plus_corpus(self, capsys):
        code, out = run(capsys, "lint", "--books", "20")
        assert code == 0
        # pipeline tables + >= 7 paper examples + >= 9 task phrasings
        count = int(out.rsplit("linted ", 1)[1].split()[0])
        assert count >= 17


class TestFormatsAndFlags:
    def test_json_format(self, capsys):
        code, out = run(
            capsys, "lint", "--xquery", "--format", "json", UNBOUND_XQ
        )
        assert code == 1
        document = json.loads(out)
        (entry,) = document
        assert entry["subject"] == UNBOUND_XQ
        assert entry["errors"] == 1
        assert entry["findings"][0]["rule"] == "QS001"

    def test_github_format(self, capsys):
        code, out = run(
            capsys, "lint", "--xquery", "--format", "github", UNBOUND_XQ
        )
        assert code == 1
        assert "::error title=QS001::" in out

    def test_suppress(self, capsys):
        code, out = run(
            capsys, "lint", "--xquery",
            "--suppress", "QS001", "--suppress", "QS003", UNBOUND_XQ
        )
        assert code == 0

    def test_unknown_suppress_rule_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit, match="QZ999"):
            run(capsys, "lint", "--suppress", "QZ999", "--self")

    def test_strict_promotes_warnings(self, capsys):
        warn_only = (
            'for $b in doc("bib.xml")//book, $t in doc("bib.xml")//title '
            "let $dead := $b/price where mqf($b, $t) return $t"
        )
        code, _ = run(capsys, "lint", "--xquery", warn_only)
        assert code == 0
        code, _ = run(capsys, "lint", "--xquery", "--strict", warn_only)
        assert code == 1
