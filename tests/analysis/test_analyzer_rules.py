"""Per-rule unit tests for the qlint static analyzer.

Each rule gets a positive case (the defect fires) and a negative case
(well-formed code stays silent).  The defects are expressed as XQuery
text — ``analyze_query`` parses it through the same parser the
interface uses, so these tests also pin the text round-trip.
"""

import pytest

from repro.analysis import RULES, analyze_query, severity_of
from repro.analysis.analyzer import QueryAnalyzer

DOC = 'doc("bib.xml")'
CLEAN = (
    f"for $b in {DOC}//book, $t in {DOC}//title "
    "where mqf($b, $t) return $t"
)


def rule_ids(query):
    return analyze_query(query).rule_ids()


def test_clean_query_has_no_findings():
    report = analyze_query(CLEAN)
    assert report.findings == []
    assert report.ok


class TestScopeRules:
    def test_qs001_unbound_variable(self):
        ids = rule_ids(
            f"for $b in {DOC}//book where $ghost = 1 return $b"
        )
        assert "QS001" in ids

    def test_qs001_respects_let_scope(self):
        assert "QS001" not in rule_ids(
            f"for $b in {DOC}//book let $p := $b/price "
            "where $p > 10 return $b"
        )

    def test_qs001_later_for_binding_sees_earlier(self):
        assert "QS001" not in rule_ids(
            f"for $b in {DOC}//book, $p in $b/price "
            "where $p > 10 return $b"
        )

    def test_qs002_shadowing(self):
        ids = rule_ids(
            f"for $b in {DOC}//book let $b := $b/price return $b"
        )
        assert "QS002" in ids

    def test_qs002_no_shadowing_across_distinct_names(self):
        assert "QS002" not in rule_ids(CLEAN)

    def test_qs003_unused_binding(self):
        ids = rule_ids(
            f"for $b in {DOC}//book let $dead := $b/price return $b"
        )
        assert "QS003" in ids

    def test_qs003_used_binding_is_silent(self):
        assert "QS003" not in rule_ids(CLEAN)

    def test_qs003_unused_quantifier_variable(self):
        ids = rule_ids(
            f"for $b in {DOC}//book "
            f"where some $p in $b/price satisfies 1 = 1 return $b"
        )
        assert "QS003" in ids

    def test_qs004_duplicate_binding_in_one_for(self):
        ids = rule_ids(
            f"for $b in {DOC}//book, $b in {DOC}//title return $b"
        )
        assert "QS004" in ids


class TestTypeRules:
    def test_qt001_ordering_against_non_numeric_string(self):
        ids = rule_ids(
            f'for $b in {DOC}//book where $b/price > "cheap" return $b'
        )
        assert "QT001" in ids

    def test_qt001_numeric_string_is_fine(self):
        assert "QT001" not in rule_ids(
            f'for $b in {DOC}//book where $b/price > "10" return $b'
        )

    def test_qt002_aggregate_over_literal(self):
        ids = rule_ids(
            f"for $b in {DOC}//book where $b/price = min(5) return $b"
        )
        assert "QT002" in ids

    def test_qt002_aggregate_over_path_is_fine(self):
        assert "QT002" not in rule_ids(
            f"for $b in {DOC}//book "
            "where $b/price = min($b/price) return $b"
        )

    def test_qt003_wrong_arity(self):
        ids = rule_ids(
            f"for $b in {DOC}//book where contains($b/title) return $b"
        )
        assert "QT003" in ids

    def test_qt004_unknown_function(self):
        ids = rule_ids(
            f"for $b in {DOC}//book where frobnicate($b) return $b"
        )
        assert "QT004" in ids

    def test_qt005_double_negation(self):
        ids = rule_ids(
            f"for $b in {DOC}//book "
            "where not(not($b/price > 10)) return $b"
        )
        assert "QT005" in ids

    def test_qt005_single_negation_is_fine(self):
        assert "QT005" not in rule_ids(
            f"for $b in {DOC}//book where not($b/price > 10) return $b"
        )


class TestMqfRules:
    def test_qm001_one_argument(self):
        ids = rule_ids(f"for $b in {DOC}//book where mqf($b) return $b")
        assert "QM001" in ids

    def test_qm002_non_variable_argument(self):
        ids = rule_ids(
            f"for $b in {DOC}//book where mqf($b, 5) return $b"
        )
        assert "QM002" in ids

    def test_qm003_self_join(self):
        ids = rule_ids(
            f"for $b in {DOC}//book where mqf($b, $b) return $b"
        )
        assert "QM003" in ids

    def test_well_formed_mqf_is_silent(self):
        report = analyze_query(CLEAN)
        assert not any(f.rule_id.startswith("QM") for f in report.findings)

    def test_qm_arguments_must_be_bound(self):
        ids = rule_ids(
            f"for $b in {DOC}//book where mqf($b, $ghost) return $b"
        )
        assert "QS001" in ids


class TestDeadCodeRules:
    def test_qd001_tautology(self):
        ids = rule_ids(f"for $b in {DOC}//book where 1 = 1 return $b")
        assert "QD001" in ids

    def test_qd002_contradiction(self):
        ids = rule_ids(f"for $b in {DOC}//book where 1 = 2 return $b")
        assert "QD002" in ids

    def test_qd003_unsatisfiable_conjunction(self):
        ids = rule_ids(
            f'for $b in {DOC}//book '
            'where $b = "a" and $b = "b" return $b'
        )
        assert "QD003" in ids

    def test_qd003_let_sequences_are_existential(self):
        # A let-bound sequence can contain both values at once.
        assert "QD003" not in rule_ids(
            f"for $b in {DOC}//book let $p := $b/price "
            'where $p = "1" and $p = "2" and $b/title = "x" return $b'
        )

    def test_qd003_same_value_twice_is_fine(self):
        assert "QD003" not in rule_ids(
            f'for $b in {DOC}//book '
            'where $b = "a" and $b = "A" return $b'
        )

    def test_qd004_unreachable_return(self):
        ids = rule_ids(f"for $b in {DOC}//book where 1 = 2 return $b")
        assert "QD004" in ids


class TestAnalyzerConfiguration:
    def test_suppression_silences_a_rule(self):
        query = f"for $b in {DOC}//book where $ghost = 1 return $b"
        assert "QS001" in rule_ids(query)
        report = analyze_query(query, suppress=("QS001",))
        assert "QS001" not in report.rule_ids()

    def test_unknown_suppression_rejected(self):
        with pytest.raises(ValueError, match="QZ999"):
            QueryAnalyzer(suppress=("QZ999",))

    def test_extra_pass_runs_and_can_add_findings(self):
        from repro.analysis.findings import Finding

        def forbid_books(expr, report):
            if "//book" in expr.to_text():
                report.add(
                    Finding("QD001", severity_of("QD001"),
                            "books are forbidden today")
                )

        report = analyze_query(CLEAN, extra_passes=(forbid_books,))
        assert any(
            f.message == "books are forbidden today" for f in report.findings
        )

    def test_analyzer_accepts_ast_and_text(self):
        from repro.xquery.parser import parse_xquery

        from_text = analyze_query(CLEAN)
        from_ast = analyze_query(parse_xquery(CLEAN))
        assert from_text.rule_ids() == from_ast.rule_ids() == []

    def test_every_rule_has_severity_and_description(self):
        for rule_id, rule in RULES.items():
            assert rule.severity in ("error", "warning", "info")
            assert rule.title
            assert rule_id == rule.rule_id
