"""Property-style guarantee: every golden query lints clean.

Walks the full lint corpus — the paper's worked examples plus every
good phrasing of the nine XMP benchmark tasks — through the real
pipeline and asserts the analyzer reports zero findings for each.
This is the repository-wide invariant the ``lint-queries`` CI job
enforces; a translator change that starts emitting shadowed, unbound,
or dead clauses fails here first.
"""

import pytest

from repro.analysis import PAPER_EXAMPLES, analyze_query, iter_corpus
from repro.core.interface import NaLIX


@pytest.fixture(scope="module")
def interfaces(movie_database, bib_database, small_dblp_database):
    return {
        "movies": NaLIX(movie_database),
        "bib": NaLIX(bib_database),
        "dblp": NaLIX(small_dblp_database),
    }


def corpus_entries():
    return list(iter_corpus())


def test_corpus_covers_paper_examples_and_all_tasks():
    from repro.evaluation.tasks import TASKS

    entries = corpus_entries()
    labels = [label for _, label, _ in entries]
    assert len(entries) >= len(PAPER_EXAMPLES) + len(TASKS)
    assert len(TASKS) == 9
    for task in TASKS:
        assert any(label.startswith(f"{task.task_id}[") for label in labels)


@pytest.mark.parametrize(
    "dataset,label,sentence",
    corpus_entries(),
    ids=[label for _, label, _ in corpus_entries()],
)
def test_corpus_query_lints_clean(interfaces, dataset, label, sentence):
    result = interfaces[dataset].ask(sentence, evaluate=False)
    assert result.ok, (
        f"{label}: expected the pipeline to accept {sentence!r}, got "
        f"{[m.code for m in result.errors]}"
    )
    report = result.analysis
    assert report is not None
    assert report.findings == [], (
        f"{label}: {sentence!r} produced "
        f"{[f.render() for f in report.findings]}"
    )
    # The serialized text round-trips through the parser to the same
    # clean verdict — the emitted string is the contract.
    assert analyze_query(result.xquery_text).findings == []
