"""The post-translation analysis gate inside ``NaLIX.ask``.

Acceptance contract (ISSUE 5): a corrupted translation — unbound
variable, one-argument ``mqf`` — is rejected with the correct rule id,
classified ``invalid-query``/``internal``, and never reaches the
evaluator; analyzer warnings ride along on served queries; analyzer
crashes fail open (chaos-tested); metrics, audit, and explain all see
the findings.
"""

import pytest

from repro.core.interface import NaLIX
from repro.obs.audit import AuditLog, read_audit_log
from repro.obs.explain import explain
from repro.obs.metrics import METRICS
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.xquery.parser import parse_xquery

SENTENCE = "Return the title of every movie."

UNBOUND = (
    'for $m in doc("movies.xml")//movie where $ghost = 1 return $m'
)
ONE_ARG_MQF = (
    'for $m in doc("movies.xml")//movie where mqf($m) return $m'
)
WARNING_ONLY = (
    'for $m in doc("movies.xml")//movie, $t in doc("movies.xml")//title '
    "let $dead := $m/year where mqf($m, $t) return $t"
)


def corrupting_nalix(database, corrupted_text, **kwargs):
    """A NaLIX whose translator emits ``corrupted_text``'s AST."""
    nalix = NaLIX(database, **kwargs)
    corrupted = parse_xquery(corrupted_text)
    real_translate = nalix.translator.translate

    def corrupt(tree):
        translation = real_translate(tree)
        translation.query = corrupted
        return translation

    nalix.translator.translate = corrupt
    return nalix


class TestGateRejectsCorruptedTranslations:
    @pytest.mark.parametrize(
        "corrupted,expected_rule",
        [(UNBOUND, "QS001"), (ONE_ARG_MQF, "QM001")],
        ids=["unbound-variable", "one-arg-mqf"],
    )
    def test_rejected_with_rule_id(
        self, movie_database, corrupted, expected_rule
    ):
        nalix = corrupting_nalix(movie_database, corrupted)
        result = nalix.ask(SENTENCE)

        assert result.status == "failed"
        assert result.error_class == "internal"
        assert [m.code for m in result.errors] == ["invalid-query"]
        assert expected_rule in result.analysis.rule_ids()
        assert expected_rule in result.errors[0].text

        # The malformed query never reached the evaluation stages.
        assert result.trace.find("evaluate") is None
        assert result.trace.find("xquery-parse") is None
        assert result.trace.find("analyze").status == "error"
        assert result.items == []

    def test_gate_metrics(self, movie_database):
        errors_before = METRICS.counter("analysis.findings.error").value
        rejected_before = METRICS.counter("analysis.gate.rejected").value
        nalix = corrupting_nalix(movie_database, UNBOUND)
        nalix.ask(SENTENCE)
        assert (
            METRICS.counter("analysis.findings.error").value
            == errors_before + 1
        )
        assert (
            METRICS.counter("analysis.gate.rejected").value
            == rejected_before + 1
        )

    def test_audit_entry_carries_findings_column(
        self, movie_database, tmp_path
    ):
        path = tmp_path / "audit.jsonl"
        nalix = corrupting_nalix(
            movie_database, UNBOUND, audit_log=AuditLog(str(path))
        )
        nalix.ask(SENTENCE)
        nalix.audit_log.close()
        (entry,) = read_audit_log(str(path))
        assert entry["status"] == "failed"
        assert entry["error_class"] == "internal"
        assert entry["analysis"]["errors"] == 1
        assert "QS001" in entry["analysis"]["rules"]

    def test_explain_renders_the_findings(self, movie_database):
        nalix = corrupting_nalix(movie_database, UNBOUND)
        result = nalix.ask(SENTENCE)
        text = explain(result).render_text(timings=False)
        assert "Static analysis" in text
        assert "QS001" in text
        entry = explain(result).to_dict(timings=False)
        assert entry["analysis"]["errors"] == 1


class TestGateWarnings:
    def test_warnings_do_not_block_the_query(self, movie_database):
        warnings_before = METRICS.counter("analysis.findings.warning").value
        nalix = corrupting_nalix(movie_database, WARNING_ONLY)
        result = nalix.ask(SENTENCE)
        assert result.status == "ok"
        assert "QS003" in result.analysis.rule_ids()
        assert any(
            m.code == "analysis-QS003" for m in result.warnings
        )
        assert (
            METRICS.counter("analysis.findings.warning").value
            > warnings_before
        )

    def test_clean_query_attaches_empty_report(self, movie_nalix):
        result = movie_nalix.ask(SENTENCE)
        assert result.status == "ok"
        assert result.analysis is not None
        assert result.analysis.findings == []
        # No analysis noise in feedback or explain for clean queries.
        assert not any(
            m.code.startswith("analysis-") for m in result.warnings
        )
        assert "Static analysis" not in explain(result).render_text(
            timings=False
        )

    def test_suppression_knob(self, movie_database):
        nalix = corrupting_nalix(
            movie_database, WARNING_ONLY, analysis_suppress=("QS003",)
        )
        result = nalix.ask(SENTENCE)
        assert result.status == "ok"
        assert result.analysis.findings == []


@pytest.mark.chaos
class TestGateFailsOpen:
    def test_injected_analyzer_fault_serves_the_query(self, movie_database):
        unavailable_before = METRICS.counter(
            "analysis.gate.unavailable"
        ).value
        nalix = NaLIX(
            movie_database,
            fault_plan=FaultPlan([FaultSpec("analyze")]),
        )
        result = nalix.ask(SENTENCE)
        # Fail open: the query is served unchecked, visibly.
        assert result.status == "ok"
        assert result.items
        assert any(
            m.code == "analysis-unavailable" for m in result.warnings
        )
        assert result.analysis is None
        assert (
            METRICS.counter("analysis.gate.unavailable").value
            == unavailable_before + 1
        )
        # The trace is complete: the analyze span errored but closed,
        # and evaluation still ran.
        assert result.trace.find("analyze").status == "error"
        assert result.trace.find("evaluate") is not None
        spans = list(result.trace.iter_spans())
        assert all(span.ended_at is not None for span in spans)

    def test_analyzer_crash_fails_open(self, movie_database, monkeypatch):
        import repro.core.interface as interface_module

        def explode(expr, suppress=()):
            raise RuntimeError("analyzer bug")

        monkeypatch.setattr(interface_module, "analyze_query", explode)
        nalix = NaLIX(movie_database)
        result = nalix.ask(SENTENCE)
        assert result.status == "ok"
        assert result.items
        assert any(
            m.code == "analysis-unavailable" for m in result.warnings
        )

    def test_budget_trip_in_gate_stays_exhausted(self, movie_database):
        from repro.resilience.budget import BudgetExceeded

        nalix = NaLIX(movie_database)
        real = nalix.translator.translate

        def slow_translate(tree):
            translation = real(tree)
            # Simulate the deadline expiring right at the gate.
            nalix_budget_error = BudgetExceeded("deadline", 0.001, 0.002)
            def trip(*args, **kwargs):
                raise nalix_budget_error
            nalix._analyze = trip
            return translation

        nalix.translator.translate = slow_translate
        result = nalix.ask(SENTENCE)
        assert result.status == "failed"
        assert result.error_class == "exhausted"
        assert any(
            m.code == "budget-exhausted" for m in result.errors
        )
