"""Unit tests for the chunker (MWE + proper-name merging)."""

from repro.nlp.categories import Category
from repro.nlp.chunker import build_chunks
from repro.nlp.tagger import tag_words
from repro.nlp.tokenizer import tokenize_sentence

PHRASES = {
    "the number of": Category.FUNCTION,
    "be the same as": Category.COMPARATIVE,
    "the same as": Category.COMPARATIVE,
    "sorted by": Category.ORDER,
    "more than": Category.COMPARATIVE,
}


def chunks(sentence):
    tagged = tag_words(tokenize_sentence(sentence), {})
    return build_chunks(tagged, PHRASES)


def lemmas(sentence):
    return [chunk.lemma for chunk in chunks(sentence)]


class TestPhraseMatching:
    def test_the_number_of(self):
        assert "the number of" in lemmas("the number of movies")

    def test_copula_phrase_matches_inflections(self):
        for copula in ("is", "are", "was"):
            merged = lemmas(f"the title {copula} the same as the name")
            assert "be the same as" in merged

    def test_longest_match_wins(self):
        # "be the same as" (4 words) must beat "the same as" (3 words).
        merged = lemmas("is the same as")
        assert merged == ["be the same as"]

    def test_no_match_across_quotes(self):
        tagged = tag_words(
            tokenize_sentence('titled "the number of" exactly'), {}
        )
        merged = build_chunks(tagged, PHRASES)
        quoted = next(chunk for chunk in merged if chunk.quoted)
        # The quoted span stays a VALUE; the phrase rule must not claim it.
        assert quoted.category == Category.VALUE

    def test_partial_phrase_not_merged(self):
        assert "the number of" not in lemmas("the number grows")


class TestParticipleBy:
    def test_directed_by_merges(self):
        merged = lemmas("movies directed by Ron")
        assert "direct by" in merged

    def test_published_by_merges(self):
        assert "publish by" in lemmas("books published by Addison")

    def test_category_is_verb(self):
        result = chunks("movies directed by Ron")
        verb = next(c for c in result if c.lemma == "direct by")
        assert verb.category == Category.VERB


class TestValueRuns:
    def test_proper_name_run_merges(self):
        result = chunks("movies directed by Ron Howard")
        values = [c for c in result if c.category == Category.VALUE]
        assert len(values) == 1
        assert values[0].text == "Ron Howard"

    def test_quoted_values_not_merged_with_neighbours(self):
        result = chunks('the title "Traffic" Howard')
        values = [c for c in result if c.category == Category.VALUE]
        assert len(values) == 2

    def test_chunk_index_is_first_word(self):
        result = chunks("movies directed by Ron Howard")
        value = next(c for c in result if c.category == Category.VALUE)
        assert value.index == 3
