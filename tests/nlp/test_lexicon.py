"""Unit tests for the closed-class lexicon."""

from repro.nlp.categories import Category
from repro.nlp.lexicon import (
    AUXILIARIES,
    CONJUNCTIONS,
    DETERMINERS,
    PREPOSITIONS,
    PRONOUNS,
    QUANTIFIERS,
    closed_class_category,
)


class TestClosedClassLookup:
    def test_determiners(self):
        assert closed_class_category("the") == Category.DETERMINER
        assert closed_class_category("an") == Category.DETERMINER

    def test_quantifiers(self):
        assert closed_class_category("every") == Category.QUANTIFIER
        assert closed_class_category("each") == Category.QUANTIFIER

    def test_prepositions(self):
        assert closed_class_category("of") == Category.PREP
        assert closed_class_category("as") == Category.PREP

    def test_pronouns(self):
        assert closed_class_category("their") == Category.PRONOUN

    def test_auxiliaries(self):
        assert closed_class_category("is") == Category.AUXILIARY
        assert closed_class_category("there") == Category.AUXILIARY

    def test_conjunctions(self):
        assert closed_class_category("and") == Category.CONJUNCTION

    def test_negation(self):
        assert closed_class_category("not") == Category.NEGATION

    def test_subordinators(self):
        assert closed_class_category("where") == Category.SUBORDINATOR

    def test_open_class_returns_none(self):
        assert closed_class_category("movie") is None
        assert closed_class_category("frobnicate") is None

    def test_priority_determiner_over_subordinator(self):
        # "that" is in both sets; the lexicon resolves to determiner and
        # the parser re-reads it from context.
        assert closed_class_category("that") == Category.DETERMINER


class TestSetSanity:
    def test_sets_disjoint_enough(self):
        # A word in several sets is resolved by lookup order; make sure
        # the truly load-bearing words live in exactly one set.
        for word in ("of", "by", "with"):
            assert word in PREPOSITIONS
            assert word not in DETERMINERS | QUANTIFIERS | PRONOUNS

    def test_core_membership(self):
        assert {"the", "a", "an"} <= DETERMINERS
        assert {"every", "each", "all"} <= QUANTIFIERS
        assert {"is", "are", "has"} <= AUXILIARIES
        assert "and" in CONJUNCTIONS
