"""Unit tests for the ParseNode structure."""

from repro.nlp.categories import Category
from repro.nlp.parse_tree import ParseNode


def node(text, index, category=Category.NOUN):
    return ParseNode(text, text.lower(), category, index)


class TestStructure:
    def test_attach_sets_parent(self):
        root = node("Return", 0, Category.COMMAND)
        child = root.attach(node("movie", 1))
        assert child.parent is root
        assert root.children == [child]

    def test_detach(self):
        root = node("Return", 0, Category.COMMAND)
        child = root.attach(node("movie", 1))
        child.detach()
        assert child.parent is None
        assert root.children == []

    def test_reattach(self):
        root = node("Return", 0, Category.COMMAND)
        first = root.attach(node("movie", 1))
        second = root.attach(node("title", 2))
        second.reattach_to(first)
        assert second.parent is first
        assert root.children == [first]


class TestTraversal:
    def build(self):
        root = node("Return", 0, Category.COMMAND)
        movie = root.attach(node("movie", 2))
        movie.attach(node("every", 1, Category.QUANTIFIER))
        movie.attach(node("of", 3, Category.PREP))
        return root, movie

    def test_preorder(self):
        root, movie = self.build()
        texts = [n.text for n in root.preorder()]
        assert texts == ["Return", "movie", "every", "of"]

    def test_descendants_excludes_self(self):
        root, _ = self.build()
        assert all(n is not root for n in root.descendants())

    def test_ancestors(self):
        root, movie = self.build()
        leaf = movie.children[0]
        assert [n.text for n in leaf.ancestors()] == ["movie", "Return"]

    def test_find(self):
        root, _ = self.build()
        hits = root.find(lambda n: n.category == Category.QUANTIFIER)
        assert [n.text for n in hits] == ["every"]


class TestIdsAndRendering:
    def test_assign_ids_by_sentence_order(self):
        root = node("Return", 0, Category.COMMAND)
        movie = root.attach(node("movie", 2))
        movie.attach(node("every", 1, Category.QUANTIFIER))
        root.assign_ids()
        by_text = {n.text: n.node_id for n in root.preorder()}
        assert by_text == {"Return": 1, "every": 2, "movie": 3}

    def test_indented_rendering(self):
        root = node("Return", 0, Category.COMMAND)
        root.attach(node("movie", 1))
        rendered = root.to_indented_string()
        lines = rendered.splitlines()
        assert lines[0].startswith("Return")
        assert lines[1].startswith("  movie")
