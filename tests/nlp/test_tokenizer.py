"""Unit tests for the sentence tokenizer."""

from repro.nlp.tokenizer import tokenize_sentence


def texts(sentence):
    return [word.text for word in tokenize_sentence(sentence)]


class TestBasics:
    def test_simple_words(self):
        assert texts("Return every movie") == ["Return", "every", "movie"]

    def test_punctuation_tokens(self):
        words = tokenize_sentence("movies, sorted by title.")
        assert [w.text for w in words if w.is_punct] == [",", "."]

    def test_numbers(self):
        words = tokenize_sentence("after 1991 and 3.5 stars")
        numbers = [w.text for w in words if w.is_number]
        assert numbers == ["1991", "3.5"]

    def test_indexes_sequential(self):
        words = tokenize_sentence("a b c")
        assert [w.index for w in words] == [0, 1, 2]

    def test_empty(self):
        assert tokenize_sentence("") == []
        assert tokenize_sentence("   ") == []


class TestQuotes:
    def test_double_quoted_phrase_is_single_token(self):
        words = tokenize_sentence('the title is "Gone with the Wind"')
        quoted = [w for w in words if w.quoted]
        assert len(quoted) == 1
        assert quoted[0].text == "Gone with the Wind"

    def test_typographic_quotes(self):
        words = tokenize_sentence("the title is “Data on the Web”")
        quoted = [w for w in words if w.quoted]
        assert quoted[0].text == "Data on the Web"

    def test_unterminated_quote_does_not_crash(self):
        words = tokenize_sentence('the title is "Broken')
        assert any(w.text == "title" for w in words)

    def test_apostrophe_inside_word_kept(self):
        words = tokenize_sentence("the author's book")
        assert any(w.text == "author's" for w in words)


class TestHyphensAndCase:
    def test_hyphenated_word_is_one_token(self):
        assert "Addison-Wesley" in texts("published by Addison-Wesley")

    def test_capitalization_detection(self):
        words = tokenize_sentence("by Ron Howard")
        assert words[1].is_capitalized()
        assert not words[0].is_capitalized()
