"""Unit tests for the rule-based tagger."""

from repro.nlp.categories import Category
from repro.nlp.tagger import tag_words
from repro.nlp.tokenizer import tokenize_sentence


def tag(sentence, vocabulary=None):
    return tag_words(tokenize_sentence(sentence), vocabulary or {})


def categories(sentence, vocabulary=None):
    return [tw.category for tw in tag(sentence, vocabulary)]


class TestClosedClasses:
    def test_determiners_and_quantifiers(self):
        assert categories("the every") == [
            Category.DETERMINER,
            Category.QUANTIFIER,
        ]

    def test_prepositions(self):
        assert categories("of by with") == [Category.PREP] * 3

    def test_auxiliaries_lemmatized_to_be(self):
        tagged = tag("is")
        assert tagged[0].category == Category.AUXILIARY
        assert tagged[0].lemma == "be"

    def test_pronouns(self):
        assert categories("it their") == [Category.PRONOUN] * 2

    def test_subordinators(self):
        # Mid-sentence "where" introduces a clause; sentence-initially it
        # would be a wh-word instead.
        assert categories("books where")[1] == Category.SUBORDINATOR

    def test_negation(self):
        assert categories("not") == [Category.NEGATION]


class TestOpenClasses:
    def test_common_nouns_lemmatized(self):
        tagged = tag("movies")
        assert tagged[0].category == Category.NOUN
        assert tagged[0].lemma == "movie"

    def test_unknown_lowercase_defaults_to_noun(self):
        assert categories("flibbertigibbet") == [Category.NOUN]

    def test_inflected_relation_verb(self):
        tagged = tag("movies directed")
        assert tagged[1].category == Category.VERB
        assert tagged[1].lemma == "direct"

    def test_base_relation_verb_needs_verbal_context(self):
        # "the work" is a noun; "that have" precedes a verb reading.
        assert categories("the work")[1] == Category.NOUN
        assert categories("books that have")[2] == Category.AUXILIARY

    def test_adjectives(self):
        assert categories("new")[0] == Category.ADJECTIVE


class TestValues:
    def test_quoted_is_value(self):
        tagged = tag('the title "Data on the Web"')
        assert tagged[-1].category == Category.VALUE

    def test_numbers_are_values(self):
        tagged = tag("after 1991")
        assert tagged[-1].category == Category.VALUE

    def test_capitalized_mid_sentence_is_value(self):
        tagged = tag("directed by Ron")
        assert tagged[-1].category == Category.VALUE

    def test_sentence_initial_capital_not_value(self):
        tagged = tag("Movies directed by Ron")
        assert tagged[0].category == Category.NOUN


class TestVocabularyOverrides:
    def test_single_word_vocabulary(self):
        tagged = tag("return", {"return": Category.COMMAND})
        assert tagged[0].category == Category.COMMAND

    def test_vocabulary_applies_to_lemma(self):
        tagged = tag("films", {"film": Category.NOUN})
        assert tagged[0].lemma == "film"

    def test_wh_word_sentence_initial(self):
        assert categories("what books")[0] == Category.WH

    def test_possessive_stripped(self):
        tagged = tag("the author's name")
        assert tagged[1].lemma == "author"
