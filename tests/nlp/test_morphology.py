"""Unit tests for morphology (singularize/pluralize/verb lemmas)."""

import pytest

from repro.nlp.morphology import pluralize, singularize, verb_lemma


class TestSingularize:
    @pytest.mark.parametrize(
        "plural,singular",
        [
            ("books", "book"),
            ("movies", "movie"),
            ("titles", "title"),
            ("directors", "director"),
            ("stories", "story"),
            ("boxes", "box"),
            ("churches", "church"),
            ("wolves", "wolf"),
            ("children", "child"),
            ("people", "person"),
            ("series", "series"),
            ("analyses", "analysis"),
            ("prices", "price"),
        ],
    )
    def test_plural_to_singular(self, plural, singular):
        assert singularize(plural) == singular

    @pytest.mark.parametrize(
        "word", ["book", "this", "class", "status", "is", "press", "always"]
    )
    def test_non_plurals_untouched(self, word):
        assert singularize(word) == word


class TestPluralize:
    @pytest.mark.parametrize(
        "singular,plural",
        [
            ("book", "books"),
            ("movie", "movies"),
            ("story", "stories"),
            ("box", "boxes"),
            ("church", "churches"),
            ("child", "children"),
        ],
    )
    def test_singular_to_plural(self, singular, plural):
        assert pluralize(singular) == plural

    @pytest.mark.parametrize(
        "word", ["book", "movie", "story", "box", "director", "title"]
    )
    def test_roundtrip(self, word):
        assert singularize(pluralize(word)) == word


class TestVerbLemma:
    @pytest.mark.parametrize(
        "form,lemma",
        [
            ("directed", "direct"),
            ("published", "publish"),
            ("written", "write"),
            ("wrote", "write"),
            ("is", "be"),
            ("are", "be"),
            ("was", "be"),
            ("has", "have"),
            ("does", "do"),
            ("directs", "direct"),
            ("publishes", "publish"),
            ("including", "include"),
            ("containing", "contain"),
            ("planned", "plan"),
            ("edited", "edit"),
            ("produced", "produce"),
            ("sold", "sell"),
            ("contains", "contain"),
        ],
    )
    def test_inflections(self, form, lemma):
        assert verb_lemma(form) == lemma

    def test_base_forms_untouched(self):
        assert verb_lemma("direct") == "direct"
        assert verb_lemma("go") == "go"
