"""Unit tests for the dependency parser's attachment rules.

The expectations mirror the tree shapes of the paper's Figures 2, 3
and 10; more end-to-end checks live in tests/core/test_paper_examples.
"""

import pytest

from repro.core.enums import parser_vocabulary
from repro.nlp.categories import Category
from repro.nlp.dependency import DependencyParser
from repro.nlp.errors import ParseFailure


@pytest.fixture(scope="module")
def parser():
    return DependencyParser(parser_vocabulary())


def find(tree, text):
    matches = [node for node in tree.preorder() if node.text == text]
    assert matches, f"no node {text!r} in tree:\n{tree.to_indented_string()}"
    return matches[0]


class TestRoot:
    def test_command_is_root(self, parser):
        tree = parser.parse("Return every movie.")
        assert tree.category == Category.COMMAND
        assert tree.lemma == "return"

    def test_wh_root(self, parser):
        tree = parser.parse("What is the title of the movie?")
        assert tree.category == Category.WH

    def test_missing_command_gives_placeholder(self, parser):
        tree = parser.parse("movies directed by Ron Howard")
        assert tree.category == Category.UNKNOWN

    def test_empty_raises(self, parser):
        with pytest.raises(ParseFailure):
            parser.parse("   ")


class TestNounPhrases:
    def test_object_attaches_to_root(self, parser):
        tree = parser.parse("Return every movie.")
        movie = find(tree, "movie")
        assert movie.parent is tree

    def test_of_chain(self, parser):
        tree = parser.parse("Return the title of the movie.")
        title = find(tree, "title")
        of = find(tree, "of")
        movie = find(tree, "movie")
        assert of.parent is title
        assert movie.parent is of

    def test_modifiers_attach_to_noun(self, parser):
        tree = parser.parse("Return every new movie.")
        movie = find(tree, "movie")
        children = {child.text for child in movie.children}
        assert {"every", "new"} <= children

    def test_coordination_shares_parent(self, parser):
        tree = parser.parse("Return the year and title of every book.")
        year = find(tree, "year")
        title = find(tree, "title")
        assert year.parent is tree
        assert title.parent is tree
        assert title.conjunct_of is year


class TestVerbsAndValues:
    def test_participle_connector(self, parser):
        tree = parser.parse("Return every movie directed by Ron Howard.")
        movie = find(tree, "movie")
        directed = find(tree, "directed by")
        value = find(tree, "Ron Howard")
        assert directed.parent is movie
        assert value.parent is directed

    def test_copula_value_attaches_to_noun(self, parser):
        tree = parser.parse("Return every movie whose director is Ron Howard.")
        director = find(tree, "director")
        value = find(tree, "Ron Howard")
        assert value.parent is director

    def test_whose_connects(self, parser):
        tree = parser.parse("Return every movie whose director is Ron Howard.")
        movie = find(tree, "movie")
        whose = find(tree, "whose")
        assert whose.parent is movie


class TestClauses:
    def test_where_clause_comparative_lifts_subject(self, parser):
        tree = parser.parse(
            "Return the director, where the title of the movie is the same "
            'as the title of a book.'
        )
        comparative = next(
            node
            for node in tree.preorder()
            if node.category == Category.COMPARATIVE
        )
        assert comparative.parent is tree
        operand_texts = {child.text for child in comparative.children}
        assert "title" in operand_texts
        assert len([c for c in comparative.children
                    if c.category == Category.NOUN]) == 2

    def test_copula_predicate_in_where_clause(self, parser):
        tree = parser.parse(
            "Return every movie, where the director of the movie is "
            "Ron Howard."
        )
        comparatives = [
            node
            for node in tree.preorder()
            if node.category == Category.COMPARATIVE
        ]
        assert len(comparatives) == 1
        texts = {child.text for child in comparatives[0].children}
        assert "director" in texts
        assert "Ron Howard" in texts

    def test_return_extender_after_comma(self, parser):
        tree = parser.parse(
            "List books published by Addison-Wesley, including their year "
            "and title."
        )
        including = find(tree, "including")
        assert including.parent is tree
        year = find(tree, "year")
        title = find(tree, "title")
        assert year.parent is including
        assert title.parent is including


class TestOrderAndFunctions:
    def test_order_phrase_attaches_to_root(self, parser):
        tree = parser.parse("Return the title of every book, sorted by title.")
        order = next(
            node for node in tree.preorder() if node.category == Category.ORDER
        )
        assert order.parent is tree
        assert order.children[0].text == "title"

    def test_function_takes_noun_complement(self, parser):
        tree = parser.parse("Return the number of movies.")
        function = next(
            node
            for node in tree.preorder()
            if node.category == Category.FUNCTION
        )
        assert function.parent is tree
        assert function.children[0].text == "movies"

    def test_node_ids_follow_sentence_order(self, parser):
        tree = parser.parse("Return the title of every movie.")
        ordered = sorted(tree.preorder(), key=lambda node: node.index)
        ids = [node.node_id for node in ordered if node.node_id]
        assert ids == sorted(ids)
