"""Admission control: capacity, rate limits, draining, tickets."""

import pytest

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_seconds_until_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        assert bucket.seconds_until() == pytest.approx(0.5)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)

    def test_default_burst_is_at_least_one(self):
        bucket = TokenBucket(rate=0.1)
        assert bucket.burst == 1.0


class TestAdmissionController:
    def test_admits_up_to_capacity(self):
        controller = AdmissionController(max_inflight=2)
        controller.admit("a")
        controller.admit("a")
        with pytest.raises(AdmissionError) as info:
            controller.admit("a")
        assert info.value.reason == "capacity"
        assert info.value.http_status == 503

    def test_release_frees_capacity(self):
        controller = AdmissionController(max_inflight=1)
        ticket = controller.admit("a")
        ticket.release()
        assert controller.inflight == 0
        controller.admit("a")  # does not raise

    def test_release_is_idempotent(self):
        controller = AdmissionController(max_inflight=2)
        ticket = controller.admit("a")
        ticket.release()
        ticket.release()
        assert controller.inflight == 0

    def test_ticket_is_a_context_manager(self):
        controller = AdmissionController(max_inflight=1)
        with controller.admit("a"):
            assert controller.inflight == 1
        assert controller.inflight == 0

    def test_per_tenant_inflight_cap(self):
        controller = AdmissionController(max_inflight=10, tenant_inflight=1)
        controller.admit("a")
        with pytest.raises(AdmissionError) as info:
            controller.admit("a")
        assert info.value.reason == "tenant_capacity"
        assert info.value.http_status == 429
        controller.admit("b")  # a different tenant is unaffected

    def test_per_tenant_rate_limit(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_inflight=100, tenant_rate=1.0, tenant_burst=1.0, clock=clock
        )
        controller.admit("a").release()
        with pytest.raises(AdmissionError) as info:
            controller.admit("a")
        assert info.value.reason == "rate"
        assert info.value.http_status == 429
        assert info.value.retry_after_seconds >= 1
        clock.advance(1.0)
        controller.admit("a")  # bucket refilled

    def test_rate_limits_are_per_tenant(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_inflight=100, tenant_rate=1.0, tenant_burst=1.0, clock=clock
        )
        controller.admit("a").release()
        controller.admit("b").release()  # b has its own bucket

    def test_draining_refuses_everything(self):
        controller = AdmissionController(max_inflight=10)
        controller.start_draining()
        with pytest.raises(AdmissionError) as info:
            controller.admit("a")
        assert info.value.reason == "draining"
        assert info.value.http_status == 503

    def test_snapshot_counts(self):
        controller = AdmissionController(max_inflight=1)
        ticket = controller.admit("a")
        with pytest.raises(AdmissionError):
            controller.admit("b")
        snapshot = controller.snapshot()
        assert snapshot["inflight"] == 1
        assert snapshot["tenants"]["a"]["admitted"] == 1
        assert snapshot["tenants"]["b"]["rejected"] == 1
        ticket.release()
