"""The correctness canary: golden sweeps, drift alerts, isolation."""

import pytest

from repro.core.interface import NaLIX
from repro.data import DblpConfig, generate_dblp
from repro.database.store import Database
from repro.evaluation.goldens import compute_goldens, goldens_for
from repro.obs.metrics import METRICS
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.serve import CANARY_TENANT, CanaryRunner, ReproServer, ServeConfig

#: The committed fixture for the dataset these tests serve.
GOLDENS = goldens_for("dblp", 40, 7)


@pytest.fixture(scope="module")
def canary_database():
    database = Database()
    database.load_document(generate_dblp(DblpConfig(books=40, seed=7)))
    return database


@pytest.fixture()
def canary_nalix(canary_database):
    # Function-scoped: drift tests arm fault plans on their pipeline.
    return NaLIX(canary_database)


def _translate_chaos():
    """An always-firing translator mutation (the chaos fault)."""
    return FaultPlan([FaultSpec("translate")])


class TestGoldenFixture:
    def test_committed_goldens_match_a_fresh_pipeline(self, canary_nalix):
        # The fixture check: if this fails, the pipeline's answers
        # changed — update repro/evaluation/goldens.py only once the
        # change is understood and deliberate.
        assert compute_goldens(canary_nalix) == GOLDENS

    def test_unbaselined_datasets_have_no_fixture(self):
        assert goldens_for("dblp", 41, 7) is None
        assert goldens_for("movies", 120, 7) is None


class TestSweep:
    def test_healthy_sweep_passes_against_committed_goldens(
        self, canary_nalix
    ):
        runner = CanaryRunner(canary_nalix, goldens=GOLDENS)
        assert runner.run_once() == []
        snapshot = runner.snapshot()
        assert snapshot["pass"] is True
        assert snapshot["alerting"] is False
        assert snapshot["sweeps"] == 1
        assert snapshot["task_count"] == 9
        assert snapshot["tenant"] == CANARY_TENANT
        for outcome in snapshot["tasks"].values():
            assert outcome["ok"] is True
            assert outcome["golden_source"] == "committed"
            assert outcome["seconds"] > 0
        assert METRICS.gauge("canary.pass").value == 1.0
        assert METRICS.gauge("canary.drift").value == 0.0

    def test_self_baseline_without_committed_goldens(self, canary_nalix):
        runner = CanaryRunner(canary_nalix, goldens=None)
        assert runner.run_once() == []
        snapshot = runner.snapshot()
        assert snapshot["pass"] is True
        for task_id, outcome in snapshot["tasks"].items():
            assert outcome["golden_source"] == "computed"
            # The self-baseline converges on the committed fixture.
            assert outcome["answer_digest"] == GOLDENS[task_id]

    def test_prometheus_lines_carry_per_task_gauges(self, canary_nalix):
        runner = CanaryRunner(canary_nalix, goldens=GOLDENS)
        runner.run_once()
        lines = runner.prometheus_lines()
        assert any(
            line.startswith('repro_canary_task_ok{task="Q1"} 1')
            for line in lines
        )
        assert any(
            line.startswith('repro_canary_task_seconds{task="Q1"}')
            for line in lines
        )


class TestDrift:
    def test_translator_mutation_flips_the_gauge_within_two_sweeps(
        self, canary_nalix
    ):
        runner = CanaryRunner(canary_nalix, goldens=GOLDENS)
        assert runner.run_once() == []
        canary_nalix.fault_plan = _translate_chaos()
        failing = runner.run_once()
        assert failing  # drift detected on the very next sweep
        assert METRICS.gauge("canary.pass").value == 0.0
        assert METRICS.gauge("canary.drift").value == float(len(failing))
        snapshot = runner.snapshot()
        assert snapshot["pass"] is False
        assert snapshot["alerting"] is True
        assert snapshot["drifting"] == sorted(failing)

    def test_self_baseline_still_catches_lifetime_drift(self, canary_nalix):
        runner = CanaryRunner(canary_nalix, goldens=None)
        assert runner.run_once() == []
        canary_nalix.fault_plan = _translate_chaos()
        assert runner.run_once()  # drifted against the first sweep

    def test_drift_alert_is_edge_triggered(self, canary_nalix):
        alerts = []
        runner = CanaryRunner(
            canary_nalix, goldens=GOLDENS, on_drift=alerts.append
        )
        canary_nalix.fault_plan = _translate_chaos()
        runner.run_once()
        runner.run_once()
        assert len(alerts) == 1  # fail->fail does not re-fire
        canary_nalix.fault_plan = None
        assert runner.run_once() == []  # recovery re-arms the edge
        assert runner.snapshot()["alerting"] is False
        canary_nalix.fault_plan = _translate_chaos()
        runner.run_once()
        assert len(alerts) == 2

    def test_a_crashing_alert_hook_never_breaks_the_sweep(
        self, canary_nalix
    ):
        def explode(failing):
            raise RuntimeError("pager down")

        runner = CanaryRunner(
            canary_nalix, goldens=GOLDENS, on_drift=explode
        )
        canary_nalix.fault_plan = _translate_chaos()
        before = METRICS.counter("canary.alert_errors").value
        assert runner.run_once()  # does not raise
        assert METRICS.counter("canary.alert_errors").value == before + 1


class TestServerIntegration:
    @pytest.fixture()
    def server(self, canary_database, tmp_path):
        config = ServeConfig(
            port=0,
            canary=True,
            canary_interval=999.0,  # sweeps driven by hand in tests
            canary_goldens=GOLDENS,
            dump_dir=str(tmp_path / "dumps"),
            min_dump_interval=0.0,
        )
        return ReproServer(nalix=NaLIX(canary_database), config=config)

    def test_canary_traffic_never_moves_production_surfaces(self, server):
        for _ in range(2):
            assert server.canary.run_once() == []
        # SLO windows saw zero requests: the canary bypasses
        # SLOEngine.record_request entirely.
        for entry in server.slo.snapshot():
            for window in entry["windows"].values():
                assert window["good"] == 0
                assert window["bad"] == 0
        # No serving latency window (endpoint or tenant) observed it.
        assert server.window.snapshot() == {}
        # No admission tenant bucket exists for it either.
        assert server.admission.snapshot()["tenants"] == {}

    def test_statusz_and_metrics_surface_the_canary(self, server):
        server.canary.run_once()
        snapshot = server.status_snapshot()
        assert snapshot["canary"]["pass"] is True
        assert snapshot["canary"]["tenant"] == CANARY_TENANT
        assert 'repro_canary_task_ok{task="Q1"} 1' in server.metrics_text()

    def test_drift_triggers_a_flight_recorder_dump(self, server, tmp_path):
        assert server.canary.run_once() == []
        server.nalix.fault_plan = _translate_chaos()
        # "Within two canary periods": the mutation lands between
        # sweeps; the next two sweeps must flip the gauge and dump.
        server.canary.run_once()
        server.canary.run_once()
        assert METRICS.gauge("canary.pass").value == 0.0
        dumps = list((tmp_path / "dumps").glob(
            "flightrecorder-*-canary-drift-*.jsonl"
        ))
        assert dumps, "drift fired no flight-recorder dump"
        # The failing probes were parked as evidence before the dump.
        by_reason = server.recorder.snapshot()["by_reason"]
        assert by_reason.get("canary-drift", 0) > 0

    def test_canary_off_by_default(self, canary_database):
        server = ReproServer(
            nalix=NaLIX(canary_database), config=ServeConfig(port=0)
        )
        assert server.canary is None
        assert server.status_snapshot()["canary"] is None
