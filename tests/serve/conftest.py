"""Serve-suite fixtures: thread/fd leak sanitizer around the session.

The serve tests start real HTTP servers, watchdog sweeps, canary
runners and load generators; a missing ``stop()`` or an unclosed
socket outlives its test and poisons a later one.  The autouse
session fixture snapshots the process before the first serve test and
fails loudly at session end if threads or descriptors leaked.
"""

import pytest

from repro.analysis.sanitizers import (
    check_fd_leaks,
    check_thread_leaks,
    snapshot,
)


@pytest.fixture(scope="session", autouse=True)
def leak_sanitizer():
    baseline = snapshot()
    yield
    leaked_threads = check_thread_leaks(baseline)
    assert not leaked_threads, (
        f"serve tests leaked threads: {leaked_threads}"
    )
    fd_complaint = check_fd_leaks(baseline)
    assert fd_complaint is None, f"serve tests leaked fds: {fd_complaint}"
