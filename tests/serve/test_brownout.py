"""Every brownout-ladder step, driven by a fake clock (no sleeps)."""

import pytest

from repro.resilience.budget import QueryBudget
from repro.serve.brownout import LEVELS, MAX_LEVEL, BrownoutController


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_controller(clock, **overrides):
    kwargs = dict(pressure_high=0.8, pressure_low=0.5, step_seconds=2.0,
                  cooldown_seconds=5.0, clock=clock)
    kwargs.update(overrides)
    return BrownoutController(**kwargs)


class TestAscent:
    def test_starts_at_level_zero(self):
        controller = make_controller(FakeClock())
        assert controller.level == 0

    def test_single_hot_sample_does_not_ascend(self):
        controller = make_controller(FakeClock())
        assert controller.observe(1.0) == 0

    def test_sustained_pressure_ascends_one_level_per_step(self):
        clock = FakeClock()
        controller = make_controller(clock)
        controller.observe(0.9)          # streak starts
        clock.advance(1.99)
        assert controller.observe(0.9) == 0  # not yet a full step
        clock.advance(0.01)
        assert controller.observe(0.9) == 1
        # The next level needs its *own* full step of sustained heat.
        assert controller.observe(0.9) == 1
        clock.advance(2.0)
        assert controller.observe(0.9) == 2
        clock.advance(2.0)
        assert controller.observe(0.9) == 3

    def test_never_exceeds_max_level(self):
        clock = FakeClock()
        controller = make_controller(clock)
        for _ in range(10):
            controller.observe(1.0)
            clock.advance(2.0)
        assert controller.observe(1.0) == MAX_LEVEL

    def test_open_breaker_counts_as_pressure(self):
        clock = FakeClock()
        controller = make_controller(clock)
        controller.observe(0.0, breaker_open=True)
        clock.advance(2.0)
        assert controller.observe(0.0, breaker_open=True) == 1

    def test_middle_band_resets_the_hot_streak(self):
        clock = FakeClock()
        controller = make_controller(clock)
        controller.observe(0.9)
        clock.advance(1.5)
        controller.observe(0.6)  # between low and high: streak broken
        clock.advance(1.5)
        assert controller.observe(0.9) == 0  # streak restarted from zero


class TestDescent:
    def ascended(self, clock, levels=2):
        controller = make_controller(clock)
        for _ in range(levels):
            controller.observe(1.0)
            clock.advance(2.0)
            controller.observe(1.0)
        assert controller.level == levels
        return controller

    def test_sustained_calm_descends_one_level_per_cooldown(self):
        clock = FakeClock()
        controller = self.ascended(clock, levels=2)
        controller.observe(0.1)          # calm streak starts
        clock.advance(4.99)
        assert controller.observe(0.1) == 2
        clock.advance(0.01)
        assert controller.observe(0.1) == 1
        clock.advance(5.0)
        assert controller.observe(0.1) == 0

    def test_never_descends_below_zero(self):
        clock = FakeClock()
        controller = make_controller(clock)
        controller.observe(0.0)
        clock.advance(50.0)
        assert controller.observe(0.0) == 0

    def test_hot_sample_resets_the_calm_streak(self):
        clock = FakeClock()
        controller = self.ascended(clock, levels=1)
        controller.observe(0.1)
        clock.advance(4.0)
        controller.observe(0.9)  # heat breaks the calm streak
        clock.advance(4.0)
        assert controller.observe(0.1) == 1  # calm must re-accumulate


class TestPlan:
    def at_level(self, level):
        clock = FakeClock()
        controller = make_controller(clock)
        for _ in range(level):
            controller.observe(1.0)
            clock.advance(2.0)
            controller.observe(1.0)
        assert controller.level == level
        return controller

    def test_level_zero_passes_the_budget_through(self):
        controller = self.at_level(0)
        budget = QueryBudget.default(deadline_seconds=2.0)
        planned, pre_degrade = controller.plan(budget)
        assert planned is budget
        assert pre_degrade is None

    def test_level_one_halves_the_budget(self):
        controller = self.at_level(1)
        budget = QueryBudget.default(deadline_seconds=2.0)
        planned, pre_degrade = controller.plan(budget)
        assert planned.deadline_seconds == pytest.approx(1.0)
        assert pre_degrade is None

    def test_level_two_pre_degrades_to_naive(self):
        controller = self.at_level(2)
        planned, pre_degrade = controller.plan(
            QueryBudget.default(deadline_seconds=2.0)
        )
        assert planned.deadline_seconds == pytest.approx(0.5)
        assert pre_degrade == "naive-flwor"

    def test_level_three_pre_degrades_to_keyword(self):
        controller = self.at_level(3)
        _, pre_degrade = controller.plan(
            QueryBudget.default(deadline_seconds=2.0)
        )
        assert pre_degrade == "keyword-search"

    def test_plan_without_budget(self):
        controller = self.at_level(2)
        planned, pre_degrade = controller.plan(None)
        assert planned is None
        assert pre_degrade == "naive-flwor"

    def test_levels_table_shape(self):
        assert LEVELS[0] == (1.0, None)
        assert LEVELS[MAX_LEVEL][1] == "keyword-search"

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutController(pressure_high=0.4, pressure_low=0.6)

    def test_snapshot(self):
        controller = self.at_level(2)
        snap = controller.snapshot()
        assert snap["level"] == 2
        assert snap["budget_scale"] == 0.25
        assert snap["pre_degrade"] == "naive-flwor"
