"""Racecheck under real serving load: zero violations, bounded overhead.

The chaos/CI contract for ``REPRO_RACECHECK=1``: a server whose locks
are all :class:`CheckedLock` serves real traffic with **zero** order,
cycle, hold, or blocking violations, surfaces the accounting on
``/statusz``, and costs well under the 25% overhead budget.
"""

import json
import time
import urllib.request

import pytest

from repro.analysis import racecheck
from repro.serve import ReproServer, ServeConfig

pytestmark = pytest.mark.chaos

SENTENCE = "Return the title of every movie."


def post_query(url, sentence):
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps({"sentence": sentence}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return json.loads(response.read())


def get_statusz(url):
    with urllib.request.urlopen(url + "/statusz", timeout=10.0) as response:
        return json.loads(response.read())


@pytest.fixture
def checked_racecheck():
    """Enable racecheck for locks created inside the test; restore after."""
    was_enabled = racecheck.enabled()
    racecheck.enable()
    racecheck.reset()
    yield
    if not was_enabled:
        racecheck.disable()
    racecheck.reset()


def serve_config(tmp_path, tag):
    return ServeConfig(
        port=0, max_inflight=8,
        audit_path=str(tmp_path / f"{tag}-audit.jsonl"),
    )


class TestCheckedServing:
    def test_served_traffic_is_violation_free(
        self, checked_racecheck, movie_nalix, tmp_path
    ):
        config = serve_config(tmp_path, "checked")
        with ReproServer(nalix=movie_nalix, config=config) as server:
            for _ in range(10):
                document = post_query(server.url, SENTENCE)
                assert document["status"] == "ok"
            statusz = get_statusz(server.url)
        section = statusz["racecheck"]
        assert section["enabled"] is True
        assert section["acquisitions"] > 0
        assert section["violations_total"] == 0, section["events"]
        # hold-time accounting covers the serving locks
        assert any(
            name.startswith(("serve.", "obs.")) for name in section["holds"]
        )

    def test_statusz_omits_racecheck_when_disabled(
        self, movie_nalix, tmp_path
    ):
        if racecheck.enabled():
            pytest.skip("session runs with REPRO_RACECHECK=1")
        config = serve_config(tmp_path, "plain")
        with ReproServer(nalix=movie_nalix, config=config) as server:
            statusz = get_statusz(server.url)
        assert statusz["racecheck"] is None


class TestOverhead:
    #: The issue's acceptance budget for racecheck instrumentation.
    BUDGET = 1.25

    def batch_seconds(self, url, requests_per_batch=20, batches=3):
        """Fastest batch wall-time — robust to scheduler noise spikes."""
        times = []
        for _ in range(batches):
            started = time.monotonic()
            for _ in range(requests_per_batch):
                post_query(url, SENTENCE)
            times.append(time.monotonic() - started)
        return min(times)

    def test_overhead_under_budget(self, movie_nalix, tmp_path):
        was_enabled = racecheck.enabled()
        racecheck.disable()
        try:
            config = serve_config(tmp_path, "baseline")
            with ReproServer(nalix=movie_nalix, config=config) as server:
                post_query(server.url, SENTENCE)  # warm caches
                plain = self.batch_seconds(server.url)
        finally:
            if was_enabled:
                racecheck.enable()

        racecheck.enable()
        racecheck.reset()
        try:
            config = serve_config(tmp_path, "checked")
            with ReproServer(nalix=movie_nalix, config=config) as server:
                post_query(server.url, SENTENCE)
                checked = self.batch_seconds(server.url)
                report = racecheck.report()
        finally:
            if not was_enabled:
                racecheck.disable()
            racecheck.reset()

        assert report["acquisitions"] > 0
        assert report["violations_total"] == 0
        overhead = checked / plain
        print(
            f"\nracecheck overhead: plain={plain:.3f}s "
            f"checked={checked:.3f}s ratio={overhead:.3f} "
            f"({report['acquisitions']} checked acquisitions)"
        )
        assert overhead < self.BUDGET, (
            f"racecheck overhead {overhead:.2f}x exceeds "
            f"{self.BUDGET:.2f}x budget (plain {plain:.3f}s, "
            f"checked {checked:.3f}s)"
        )
