"""The incident loop end to end: traceparent, exemplars, flight dumps.

Covers the serving-side observability wiring as one story: a client
mints a W3C trace id, the server adopts it, the tail sampler decides
whether the trace is evidence, the flight recorder holds it, the
latency windows carry it back out as a metric exemplar, and the
access log stamps the same id on the audit trail.  Auto-dump triggers
(breaker-open, watchdog-hard) are exercised against real component
wiring, not mocks of our own code.
"""

import json
import types
import urllib.error
import urllib.request

import pytest

from repro.obs.export import parse_prometheus_text, prometheus_sample_exemplar
from repro.obs.tracecontext import new_trace_id, parse_traceparent
from repro.resilience.retry import RetryPolicy
from repro.serve import ReproServer, ServeConfig, ServeClient


def http_get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def server(movie_nalix, tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-serve")
    config = ServeConfig(
        port=0, max_inflight=8,
        audit_path=str(root / "access.jsonl"),
        head_sample_rate=1.0,  # retain everything: exemplars always ride
        dump_dir=str(root / "dumps"),
        min_dump_interval=0.0,
    )
    with ReproServer(nalix=movie_nalix, config=config) as instance:
        yield instance


class TestTraceparentPropagation:
    def test_client_reuses_one_traceparent_across_retries(self):
        calls = []

        def transport(url, body, headers, timeout):
            calls.append(dict(headers))
            if len(calls) < 3:
                return 500, {}, json.dumps({"retryable": True}).encode()
            return 200, {}, b"{}"

        client = ServeClient(
            "http://test", transport=transport,
            retry_policy=RetryPolicy(max_attempts=3, jitter=False,
                                     base_backoff=0.0),
            sleep=lambda _s: None,
        )
        outcome = client.query("find all titles")
        assert outcome.ok and outcome.attempts == 3
        headers = {call["traceparent"] for call in calls}
        assert len(headers) == 1  # one trace id per *logical* request
        parsed = parse_traceparent(headers.pop())
        assert parsed is not None
        assert parsed[0] == outcome.trace_id

    def test_distinct_requests_get_distinct_trace_ids(self):
        def transport(url, body, headers, timeout):
            return 200, {}, b"{}"

        client = ServeClient("http://test", transport=transport)
        first = client.query("q one")
        second = client.query("q two")
        assert first.trace_id != second.trace_id

    def test_server_adopts_the_client_trace_id(self, server):
        client = ServeClient(server.url)
        outcome = client.query("find all titles")
        assert outcome.ok
        assert outcome.body["trace_id"] == outcome.trace_id
        assert outcome.headers["X-Repro-Trace-Id"] == outcome.trace_id

    def test_server_mints_when_header_is_absent_or_invalid(self, server):
        status, headers, body = http_get(
            server.url + "/query?q=find+all+titles"
        )
        assert status == 200
        minted = json.loads(body)["trace_id"]
        assert len(minted) == 32 and int(minted, 16) >= 0

        status, _, body = http_get(
            server.url + "/query?q=find+all+titles",
            headers={"traceparent": "garbage-header"},
        )
        assert status == 200
        assert len(json.loads(body)["trace_id"]) == 32

    def test_audit_log_carries_the_trace_id(self, server):
        client = ServeClient(server.url)
        outcome = client.query("find all titles")
        rows = [
            json.loads(line)
            for line in open(server.config.audit_path)
            if line.strip()
        ]
        matching = [
            row for row in rows
            if row.get("trace_id") == outcome.trace_id
        ]
        assert len(matching) == 1
        assert matching[0]["endpoint"] == "/query"


class TestExemplarRoundTrip:
    def test_metrics_exemplar_resolves_to_a_recorded_trace(self, server):
        client = ServeClient(server.url)
        for _ in range(3):
            assert client.query("find all titles").ok
        _, _, body = http_get(server.url + "/metrics")
        metrics = parse_prometheus_text(body.decode("utf-8"))
        found = prometheus_sample_exemplar(
            metrics, "repro_window_endpoint:_query_seconds"
        )
        assert found is not None
        exemplar_labels, value = found
        trace_id = exemplar_labels["trace_id"]
        assert value >= 0.0
        # The exemplar is only exported when the recorder kept the
        # trace, so it must resolve.
        record = server.recorder.get(trace_id)
        assert record is not None
        assert record.endpoint == "/query"

    def test_slo_gauges_are_exposed(self, server):
        ServeClient(server.url).query("find all titles")
        _, _, body = http_get(server.url + "/metrics")
        text = body.decode("utf-8")
        assert "repro_slo_burn_rate" in text
        assert "repro_slo_error_budget_remaining" in text
        assert "repro_slo_fast_burn_alert" in text

    def test_statusz_surfaces_the_incident_loop(self, server):
        ServeClient(server.url).query("find all titles")
        _, _, body = http_get(server.url + "/statusz")
        document = json.loads(body)
        assert document["recorder"]["count"] >= 1
        assert document["sampler"]["seen"]["healthy"] >= 1
        names = {entry["name"] for entry in document["slo"]}
        assert names == {"availability-query", "latency-query"}
        assert document["inflight_requests"] == []


class TestFlightRecorderEndpoint:
    def test_bundle_holds_retained_records(self, server):
        client = ServeClient(server.url)
        outcome = client.query("find all titles")
        _, _, body = http_get(server.url + "/debugz/flightrecorder")
        bundle = json.loads(body)
        assert bundle["snapshot"]["count"] >= 1
        ids = {record["trace_id"] for record in bundle["records"]}
        assert outcome.trace_id in ids

    def test_chrome_format(self, server):
        ServeClient(server.url).query("find all titles")
        _, _, body = http_get(
            server.url + "/debugz/flightrecorder?format=chrome"
        )
        document = json.loads(body)
        assert document["traceEvents"]

    def test_jsonl_format(self, server):
        ServeClient(server.url).query("find all titles")
        _, headers, body = http_get(
            server.url + "/debugz/flightrecorder?format=jsonl"
        )
        assert "ndjson" in headers["Content-Type"]
        for line in body.decode("utf-8").strip().splitlines():
            assert "trace_id" in json.loads(line)

    def test_dump_param_writes_a_bundle(self, server):
        ServeClient(server.url).query("find all titles")
        status, _, body = http_get(
            server.url + "/debugz/flightrecorder?dump=1"
        )
        assert status == 200
        document = json.loads(body)
        assert document["dumped"] is True
        assert "debugz" in document["prefix"]

    def test_404_when_recorder_disabled(self, movie_nalix):
        config = ServeConfig(port=0, recorder=False)
        with ReproServer(nalix=movie_nalix, config=config) as instance:
            status, _, body = http_get(
                instance.url + "/debugz/flightrecorder"
            )
        assert status == 404
        assert json.loads(body)["error"] == "recorder-disabled"


class TestAutoDump:
    def _quiet_server(self, movie_nalix, tmp_path, **overrides):
        config = ServeConfig(
            port=0, dump_dir=str(tmp_path), min_dump_interval=0.0,
            **overrides,
        )
        return ReproServer(nalix=movie_nalix, config=config)

    def test_breaker_open_dumps_the_recorder(self, movie_nalix, tmp_path):
        server = self._quiet_server(
            movie_nalix, tmp_path,
            breaker_min_samples=2, breaker_threshold=0.5,
        )
        server.recorder.record("a" * 32, reason="error")
        for _ in range(4):
            server.breakers.record("internal")
        dumps = list(tmp_path.glob("flightrecorder-*-breaker-open-*"))
        assert dumps, "breaker open should trigger an auto-dump"

    def test_watchdog_hard_expiry_dumps_the_recorder(
            self, movie_nalix, tmp_path):
        server = self._quiet_server(movie_nalix, tmp_path)
        entry = types.SimpleNamespace(request_id="r00000042")
        server._watchdog_event("expired", entry)
        dumps = list(tmp_path.glob("flightrecorder-*watchdog-hard*"))
        assert dumps
        # A soft "stuck" event is not incident-grade: no dump.
        before = len(list(tmp_path.glob("flightrecorder-*")))
        server._watchdog_event("stuck", entry)
        assert len(list(tmp_path.glob("flightrecorder-*"))) == before

    def test_dump_event_lands_in_the_audit_log(
            self, movie_nalix, tmp_path):
        server = self._quiet_server(
            movie_nalix, tmp_path / "dumps",
            audit_path=str(tmp_path / "audit.jsonl"),
        )
        (tmp_path / "dumps").mkdir(exist_ok=True)
        assert server.trigger_dump("chaos-drill") is not None
        rows = [json.loads(line) for line in open(tmp_path / "audit.jsonl")]
        events = [row for row in rows
                  if row.get("event") == "flightrecorder-dump"]
        assert events and events[0]["reason"] == "chaos-drill"


class FakeResult:
    def __init__(self, status="ok", error_class=None,
                 sentence="find all titles"):
        self.status = status
        self.error_class = error_class
        self.sentence = sentence
        self.trace = None


class TestRecordOutcome:
    @pytest.fixture()
    def quiet(self, movie_nalix):
        config = ServeConfig(port=0, head_sample_rate=0.0)
        return ReproServer(nalix=movie_nalix, config=config)

    def test_failures_are_always_retained(self, quiet):
        retained = quiet.record_outcome(
            "/query", "t1",
            FakeResult(status="failed", error_class="internal"),
            seconds=0.1, http_status=500, trace_id="a" * 32,
        )
        assert retained is True
        assert quiet.recorder.get("a" * 32).reason == "error"

    def test_healthy_head_rate_zero_is_dropped(self, quiet):
        retained = quiet.record_outcome(
            "/query", "t1", FakeResult(), seconds=0.01,
            http_status=200, trace_id="b" * 32,
        )
        assert retained is False
        assert quiet.recorder.get("b" * 32) is None
        # The latency window still observed — just without an exemplar.
        assert quiet.window.quantiles("endpoint:/query")["count"] == 1

    def test_slo_engine_sees_every_request(self, quiet):
        quiet.record_outcome("/query", "t1", FakeResult(), seconds=0.01,
                             http_status=200, trace_id=new_trace_id())
        quiet.record_outcome(
            "/query", "t1",
            FakeResult(status="failed", error_class="internal"),
            seconds=0.01, http_status=500, trace_id=new_trace_id(),
        )
        entry = quiet.slo.snapshot()[0]
        window = entry["windows"]["fast"]
        assert window["good"] == 1
        assert window["bad"] == 1
