"""Stuck-query watchdog: every transition via ``scan_once`` + fake clock."""

import threading

import pytest

from repro.obs.audit import AuditLog, read_audit_log
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceeded
from repro.serve.watchdog import (
    DEFAULT_DEADLINE_BASIS,
    InflightRegistry,
    Watchdog,
    sample_thread_stack,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_pair(clock, **registry_overrides):
    registry = InflightRegistry(clock=clock, **registry_overrides)
    watchdog = Watchdog(registry, clock=clock)
    return registry, watchdog


def register(registry, request_id="r1", deadline=1.0):
    meter = QueryBudget.default(deadline_seconds=deadline).start()
    return registry.register(request_id, "tenant-a", "find all titles",
                             meter)


class TestDeadlines:
    def test_deadlines_derive_from_the_budget(self):
        clock = FakeClock()
        registry, _ = make_pair(clock)  # factors 1.5 / 3.0
        entry = register(registry, deadline=2.0)
        assert entry.soft_at == pytest.approx(3.0)
        assert entry.hard_at == pytest.approx(6.0)

    def test_absolute_overrides_win(self):
        clock = FakeClock()
        registry, _ = make_pair(clock, soft_seconds=0.2, hard_seconds=0.9)
        entry = register(registry, deadline=30.0)
        assert entry.soft_at == pytest.approx(0.2)
        assert entry.hard_at == pytest.approx(0.9)

    def test_no_deadline_falls_back_to_the_basis(self):
        clock = FakeClock()
        registry, _ = make_pair(clock)
        meter = QueryBudget().start()  # deadline_seconds=None
        entry = registry.register("r1", "t", "s", meter)
        assert entry.soft_at == pytest.approx(DEFAULT_DEADLINE_BASIS * 1.5)

    def test_hard_never_precedes_soft(self):
        clock = FakeClock()
        registry, _ = make_pair(clock, soft_seconds=2.0, hard_seconds=0.5)
        entry = register(registry)
        assert entry.hard_at == entry.soft_at


class TestScanTransitions:
    def test_healthy_requests_are_untouched(self):
        clock = FakeClock()
        registry, watchdog = make_pair(clock)
        entry = register(registry, deadline=1.0)
        clock.advance(1.0)  # under the 1.5s soft deadline
        assert watchdog.scan_once() == []
        assert not entry.stuck

    def test_soft_deadline_marks_stuck_once(self):
        clock = FakeClock()
        registry, watchdog = make_pair(clock)
        entry = register(registry, deadline=1.0)
        clock.advance(1.6)
        actions = watchdog.scan_once()
        assert actions == [("stuck", entry)]
        assert entry.stuck and not entry.expired
        assert watchdog.stuck_total == 1
        # A second scan does not re-stamp it.
        assert watchdog.scan_once() == []
        assert watchdog.stuck_total == 1

    def test_hard_deadline_expires_the_meter(self):
        clock = FakeClock()
        registry, watchdog = make_pair(clock)
        entry = register(registry, deadline=1.0)
        clock.advance(3.1)  # past both 1.5s soft and 3.0s hard
        kinds = [kind for kind, _ in watchdog.scan_once()]
        assert kinds == ["stuck", "expired"]
        assert entry.expired
        assert entry.meter.expired
        # The wedged engine's next cooperative check raises, and the
        # failure classifies as exhausted (-> classified 504 upstream).
        with pytest.raises(BudgetExceeded):
            entry.meter.charge("flwor_iterations")
        assert watchdog.expired_total == 1

    def test_finishing_after_stuck_counts_recovered(self):
        clock = FakeClock()
        registry, watchdog = make_pair(clock)
        entry = register(registry, deadline=1.0)
        clock.advance(1.6)
        watchdog.scan_once()
        registry.finish(entry)
        assert registry.recovered_total == 1
        assert len(registry) == 0

    def test_expired_requests_do_not_count_recovered(self):
        clock = FakeClock()
        registry, watchdog = make_pair(clock)
        entry = register(registry, deadline=1.0)
        clock.advance(3.1)
        watchdog.scan_once()
        registry.finish(entry)
        assert registry.recovered_total == 0

    def test_finished_requests_leave_the_scan(self):
        clock = FakeClock()
        registry, watchdog = make_pair(clock)
        entry = register(registry, deadline=1.0)
        registry.finish(entry)
        clock.advance(10.0)
        assert watchdog.scan_once() == []

    def test_scan_handles_many_entries(self):
        clock = FakeClock()
        registry, watchdog = make_pair(clock)
        fast = register(registry, "fast", deadline=100.0)
        slow = register(registry, "slow", deadline=1.0)
        clock.advance(2.0)
        actions = watchdog.scan_once()
        assert actions == [("stuck", slow)]
        assert not fast.stuck


class TestAuditReporting:
    def test_stuck_event_carries_a_stack_sample(self, tmp_path):
        clock = FakeClock()
        audit = AuditLog(str(tmp_path / "audit.jsonl"), actor="serve")
        registry = InflightRegistry(clock=clock)
        watchdog = Watchdog(registry, audit=audit, clock=clock)

        # Register from a live worker thread so the watchdog can sample
        # a real stack for that thread id.
        ready = threading.Event()
        release = threading.Event()
        holder = {}

        def _worker():
            holder["entry"] = register(registry, deadline=1.0)
            ready.set()
            release.wait(timeout=10.0)

        worker = threading.Thread(target=_worker, daemon=True)
        worker.start()
        assert ready.wait(timeout=10.0)
        clock.advance(3.1)
        watchdog.scan_once()
        release.set()
        worker.join(timeout=10.0)
        audit.close()

        events = read_audit_log(str(tmp_path / "audit.jsonl"))
        kinds = [entry["event"] for entry in events]
        assert kinds == ["watchdog-stuck", "watchdog-expired"]
        stuck = events[0]
        assert stuck["request_id"] == "r1"
        assert stuck["tenant"] == "tenant-a"
        assert stuck["elapsed_seconds"] == pytest.approx(3.1)
        # The flight recorder: the worker's sampled stack, naming the
        # function it was wedged in.
        assert any("_worker" in line for line in stuck["stack"])

    def test_audit_failure_does_not_kill_the_scan(self):
        clock = FakeClock()

        class ExplodingAudit:
            def record_event(self, *args, **kwargs):
                raise OSError("disk full")

        registry = InflightRegistry(clock=clock)
        watchdog = Watchdog(registry, audit=ExplodingAudit(), clock=clock)
        register(registry, deadline=1.0)
        clock.advance(1.6)
        assert watchdog.scan_once()  # the action still happens

    def test_sample_thread_stack_of_dead_thread_is_empty(self):
        assert sample_thread_stack(-1) == []


class TestDaemon:
    def test_start_stop_and_snapshot(self):
        registry = InflightRegistry()
        watchdog = Watchdog(registry, interval=0.01)
        watchdog.start()
        watchdog.start()  # idempotent
        watchdog.stop()
        snap = watchdog.snapshot()
        assert snap["inflight"] == 0
        assert snap["stuck_total"] == 0
        assert snap["expired_total"] == 0
        assert snap["recovered_total"] == 0
