"""``repro top``: frame rendering, counter-delta math, the once mode."""

import io

import pytest

from repro.serve import ReproServer, ServeConfig, ServeClient, TopConfig, run_top
from repro.serve.top import _Poll, _rates, poll_server, render_frame


def make_status(**overrides):
    status = {
        "uptime_seconds": 120.0,
        "draining": False,
        "admission": {"inflight": 1, "max_inflight": 8},
        "breakers": {
            "internal": {"state": "closed"},
            "exhausted": {"state": "open"},
        },
        "brownout": {"level": 2},
        "watchdog": {"stuck_total": 3, "expired_total": 1,
                     "recovered_total": 2},
        "windows": {"endpoint:/query": {"p50": 0.010, "p99": 0.090}},
        "slo": [{
            "name": "availability-query",
            "windows": {"fast": {"burn_rate": 15.0},
                        "slow": {"burn_rate": 14.5}},
            "fast_burn_threshold": 14.4,
            "alerting": True,
            "error_budget_remaining": 0.25,
        }],
        "recorder": {"count": 12, "bytes": 4096, "max_bytes": 8192,
                     "retained_total": 40, "evicted_total": 28, "dumps": 1},
        "sampler": {"retention": {"error": 1.0, "slow": 1.0,
                                  "healthy": 0.08},
                    "tail_threshold_seconds": 0.075},
        "inflight_requests": [
            {"request_id": "r00000007", "tenant": "acme",
             "age_seconds": 1.25, "sentence": "find all titles",
             "stuck": True, "expired": False},
        ],
    }
    status.update(overrides)
    return status


def metrics_with_totals(two_xx, four_xx, five_xx):
    return {
        "repro_serve_responses_2xx_total": {
            "samples": [({}, float(two_xx))]},
        "repro_serve_responses_4xx_total": {
            "samples": [({}, float(four_xx))]},
        "repro_serve_responses_5xx_total": {
            "samples": [({}, float(five_xx))]},
    }


class TestRates:
    def test_qps_and_availability_from_deltas(self):
        previous = _Poll(status={}, metrics=metrics_with_totals(100, 0, 0),
                         at=10.0)
        current = _Poll(status={}, metrics=metrics_with_totals(190, 5, 5),
                        at=20.0)
        qps, availability = _rates(previous, current)
        assert qps == pytest.approx(10.0)  # 100 responses / 10s
        assert availability == pytest.approx(0.95)  # 5 of 100 were 5xx

    def test_no_previous_poll_means_no_rates(self):
        current = _Poll(status={}, metrics=metrics_with_totals(1, 0, 0),
                        at=1.0)
        assert _rates(None, current) == (None, None)

    def test_counter_reset_is_clamped(self):
        previous = _Poll(status={}, metrics=metrics_with_totals(500, 0, 0),
                         at=0.0)
        current = _Poll(status={}, metrics=metrics_with_totals(10, 0, 0),
                        at=10.0)
        qps, _ = _rates(previous, current)
        assert qps == 0.0  # negative deltas drop to zero, never go negative

    def test_idle_interval_has_no_availability(self):
        previous = _Poll(status={}, metrics=metrics_with_totals(7, 1, 1),
                         at=0.0)
        current = _Poll(status={}, metrics=metrics_with_totals(7, 1, 1),
                        at=5.0)
        qps, availability = _rates(previous, current)
        assert qps == 0.0
        assert availability is None


class TestRenderFrame:
    def test_unreachable_server_renders_the_error(self):
        frame = render_frame(_Poll(error="connection refused"),
                             url="http://gone:1")
        assert "server unreachable: connection refused" in frame

    def test_full_frame_carries_every_section(self):
        current = _Poll(status=make_status(),
                        metrics=metrics_with_totals(100, 0, 0), at=10.0)
        previous = _Poll(status=make_status(),
                         metrics=metrics_with_totals(80, 0, 0), at=8.0)
        frame = render_frame(current, previous=previous,
                             url="http://127.0.0.1:9")
        assert "up 120s" in frame
        assert "qps 10.00" in frame
        assert "p50 0.010s" in frame and "p99 0.090s" in frame
        assert "availability-query" in frame
        assert "burn fast  15.00" in frame
        assert "ALERT" in frame
        assert "internal=closed" in frame and "exhausted=open" in frame
        assert "brownout L2" in frame
        assert "stuck 3/expired 1/recovered 2" in frame
        assert "recorder 12 traces 4 KiB (50% full)" in frame
        assert "sampler errors 100%" in frame
        assert "tail>0.075s" in frame
        assert "r00000007" in frame and "STUCK" in frame

    def test_old_server_without_slo_degrades(self):
        status = make_status(slo=None, recorder=None, sampler=None,
                             inflight_requests=None)
        frame = render_frame(_Poll(status=status, metrics={}, at=1.0))
        assert "(no SLO engine on this server)" in frame
        assert "(idle)" in frame

    def test_inflight_overflow_is_elided(self):
        rows = [
            {"request_id": f"r{i:08d}", "tenant": "t",
             "age_seconds": 0.1, "sentence": "q"}
            for i in range(15)
        ]
        status = make_status(inflight_requests=rows)
        frame = render_frame(_Poll(status=status, metrics={}, at=1.0),
                             max_inflight_rows=10)
        assert "… and 5 more" in frame

    def test_color_mode_emits_ansi(self):
        current = _Poll(status=make_status(), metrics={}, at=1.0)
        assert "\x1b[" in render_frame(current, color=True)
        assert "\x1b[" not in render_frame(current, color=False)


class TestCanaryRow:
    def make_canary(self, **overrides):
        canary = {
            "tenant": "_canary", "interval_seconds": 30.0,
            "task_count": 9, "sweeps": 4, "pass": True,
            "alerting": False, "drifting": [],
            "last_sweep_seconds": 0.042,
        }
        canary.update(overrides)
        return canary

    def test_passing_canary_renders_green(self):
        status = make_status(canary=self.make_canary())
        frame = render_frame(_Poll(status=status, metrics={}, at=1.0))
        assert "canary" in frame
        assert "PASS" in frame
        assert "9 tasks" in frame
        assert "sweeps 4" in frame
        assert "every 30s" in frame

    def test_drifting_canary_names_the_tasks(self):
        status = make_status(canary=self.make_canary(
            **{"pass": False, "drifting": ["Q3", "Q7"]}
        ))
        frame = render_frame(_Poll(status=status, metrics={}, at=1.0))
        assert "DRIFT Q3,Q7" in frame

    def test_warming_canary_before_the_first_sweep(self):
        status = make_status(canary=self.make_canary(
            sweeps=0, last_sweep_seconds=None
        ))
        frame = render_frame(_Poll(status=status, metrics={}, at=1.0))
        assert "warming" in frame

    def test_server_without_a_canary_renders_no_row(self):
        frame = render_frame(
            _Poll(status=make_status(), metrics={}, at=1.0)
        )
        assert "canary" not in frame


class TestAgainstLiveServer:
    @pytest.fixture(scope="class")
    def server(self, movie_nalix):
        config = ServeConfig(port=0, max_inflight=8)
        with ReproServer(nalix=movie_nalix, config=config) as instance:
            yield instance

    def test_poll_server_round_trips(self, server):
        client = ServeClient(server.url)
        assert client.query("find all titles").ok
        poll = poll_server(client)
        assert poll.error is None
        assert poll.status["uptime_seconds"] > 0
        assert "repro_serve_requests_total" in poll.metrics

    def test_once_exits_zero_and_prints_a_frame(self, server):
        ServeClient(server.url).query("find all titles")
        out = io.StringIO()
        code = run_top(TopConfig(server.url, once=True), out=out)
        assert code == 0
        frame = out.getvalue()
        assert "repro top" in frame
        assert "availability-query" in frame
        assert "\x1b[" not in frame  # non-tty: plain text

    def test_once_exits_nonzero_when_unreachable(self):
        out = io.StringIO()
        config = TopConfig("http://127.0.0.1:9", once=True)
        code = run_top(config, out=out)
        assert code == 1
        assert "server unreachable" in out.getvalue()
