"""ServeClient retry/hedge behaviour over a scripted fake transport."""

import json
import threading

import pytest

from repro.resilience.retry import RetryPolicy
from repro.serve.client import (
    MIN_HEDGE_SAMPLES,
    QueryOutcome,
    ServeClient,
    TransportError,
)


def reply(status, body=None, headers=None):
    raw = json.dumps(body if body is not None else {}).encode("utf-8")
    return status, headers or {}, raw


class FakeTransport:
    """Returns scripted replies in order; records every request."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, url, body, headers, timeout):
        with self._lock:
            self.calls.append((url, body, headers))
            item = self.replies.pop(0)
        if isinstance(item, Exception):
            raise item
        return item


def make_client(replies, retries=2, sleeps=None, **policy_kwargs):
    policy = RetryPolicy(max_attempts=retries + 1, jitter=False,
                         base_backoff=0.01, **policy_kwargs)
    transport = FakeTransport(replies)
    client = ServeClient(
        "http://test", tenant="acme", retry_policy=policy,
        transport=transport,
        sleep=(sleeps.append if sleeps is not None else lambda _s: None),
    )
    return client, transport


class TestSingleAttempt:
    def test_success_first_try(self):
        client, transport = make_client(
            [reply(200, {"status": "ok"},
                   {"X-Repro-Seconds": "0.125"})]
        )
        outcome = client.query("find all titles")
        assert outcome.ok
        assert outcome.attempts == 1
        assert outcome.body["status"] == "ok"
        assert outcome.server_seconds == pytest.approx(0.125)
        assert len(transport.calls) == 1

    def test_tenant_header_is_sent(self):
        client, transport = make_client([reply(200)])
        client.query("q")
        _, _, headers = transport.calls[0]
        assert headers["X-Repro-Tenant"] == "acme"

    def test_non_retryable_4xx_is_final(self):
        client, transport = make_client([reply(422, {"status": "rejected"})])
        outcome = client.query("gibberish")
        assert outcome.status == 422
        assert outcome.attempts == 1
        assert len(transport.calls) == 1


class TestRetries:
    def test_retries_5xx_until_success(self):
        client, transport = make_client(
            [reply(500, {"error_class": "internal", "retryable": True}),
             reply(503, {"error": "admission-capacity"}),
             reply(200, {"status": "ok"})]
        )
        outcome = client.query("q")
        assert outcome.ok
        assert outcome.attempts == 3
        assert client.retries_total == 2

    def test_exhausts_attempts_and_returns_the_last_response(self):
        client, transport = make_client(
            [reply(500, {"error_class": "internal"})] * 3, retries=2
        )
        outcome = client.query("q")
        assert outcome.status == 500
        assert outcome.attempts == 3
        assert len(transport.calls) == 3

    def test_body_retryable_false_stops_the_loop(self):
        client, transport = make_client(
            [reply(500, {"retryable": False}), reply(200)], retries=3
        )
        outcome = client.query("q")
        assert outcome.status == 500
        assert outcome.attempts == 1

    def test_transport_errors_are_retried(self):
        client, transport = make_client(
            [TransportError("connection refused"), reply(200)]
        )
        outcome = client.query("q")
        assert outcome.ok
        assert outcome.attempts == 2

    def test_all_transport_failures_yield_status_none(self):
        client, transport = make_client(
            [TransportError("refused")] * 3, retries=2
        )
        outcome = client.query("q")
        assert outcome.status is None
        assert outcome.transport_error == "refused"
        assert outcome.attempts == 3

    def test_retry_after_header_drives_the_sleep(self):
        sleeps = []
        client, _ = make_client(
            [reply(429, {"error": "admission-rate"}, {"Retry-After": "2"}),
             reply(200)],
            sleeps=sleeps,
        )
        outcome = client.query("q")
        assert outcome.ok
        assert sleeps == [2.0]

    def test_backoff_used_without_retry_after(self):
        sleeps = []
        client, _ = make_client(
            [reply(503, {"error": "admission-capacity"}), reply(200)],
            sleeps=sleeps,
        )
        client.query("q")
        assert sleeps == [pytest.approx(0.01)]  # base, jitter off

    def test_no_retry_policy_means_one_attempt(self):
        transport = FakeTransport([reply(503, {"error": "x"})])
        client = ServeClient("http://test", transport=transport)
        outcome = client.query("q")
        assert outcome.status == 503
        assert outcome.attempts == 1


class TestHedging:
    def test_hedging_stays_off_until_enough_samples(self):
        client, _ = make_client([reply(200)], hedge_after_p95=True)
        assert client._hedge_threshold() is None
        client.query("q")
        assert client._hedge_threshold() is None  # 1 < MIN_HEDGE_SAMPLES

    def test_hedge_threshold_is_the_observed_p95(self):
        client, _ = make_client([], hedge_after_p95=True)
        for index in range(MIN_HEDGE_SAMPLES):
            client._observe(0.01 * (index + 1))
        threshold = client._hedge_threshold()
        assert threshold == pytest.approx(0.01 * MIN_HEDGE_SAMPLES)

    def test_hedge_fires_and_second_request_wins(self):
        primary_started = threading.Event()
        release_primary = threading.Event()

        def transport(url, body, headers, timeout):
            if not primary_started.is_set():
                primary_started.set()
                release_primary.wait(timeout=10.0)  # wedge the primary
                return reply(200, {"who": "primary"})
            return reply(200, {"who": "hedge"})

        client = ServeClient(
            "http://test",
            retry_policy=RetryPolicy(hedge_after_p95=True),
            transport=transport,
        )
        for _ in range(MIN_HEDGE_SAMPLES):
            client._observe(0.01)  # p95 ~ 10ms: hedge quickly
        outcome = client.query("q")
        release_primary.set()
        assert outcome.ok
        assert outcome.hedged
        assert outcome.hedge_won
        assert outcome.body["who"] == "hedge"
        assert client.hedges_total == 1
        assert client.hedge_wins_total == 1

    def test_fast_primary_needs_no_hedge(self):
        client, transport = make_client(
            [reply(200)], hedge_after_p95=True
        )
        for _ in range(MIN_HEDGE_SAMPLES):
            client._observe(10.0)  # p95 far above any real latency
        outcome = client.query("q")
        assert outcome.ok
        assert not outcome.hedged
        assert client.hedges_total == 0
        assert len(transport.calls) == 1


class TestOutcome:
    def test_ok_and_retryable_fields(self):
        assert QueryOutcome(status=200).ok
        assert not QueryOutcome(status=500).ok
        assert not QueryOutcome().ok
        assert QueryOutcome(body={"retryable": True}).retryable is True
        assert QueryOutcome(body={"retryable": False}).retryable is False
        assert QueryOutcome(body={}).retryable is None
        assert QueryOutcome(body="not json").retryable is None

    def test_snapshot(self):
        client, _ = make_client([reply(200)])
        client.query("q")
        snap = client.snapshot()
        assert snap["retries"] == 0
        assert snap["latency_samples"] == 1
