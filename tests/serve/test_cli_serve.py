"""The serving CLI surface: ``repro loadgen`` and ``repro stats --url``."""

import json

import pytest

from repro.cli import main
from repro.serve import ReproServer, ServeConfig


@pytest.fixture(scope="module")
def server(movie_nalix):
    config = ServeConfig(port=0, max_inflight=8)
    with ReproServer(nalix=movie_nalix, config=config) as instance:
        yield instance


class TestLoadgenCommand:
    def test_clean_run_exits_zero(self, server, capsys):
        code = main([
            "loadgen", "--url", server.url, "--concurrency", "4",
            "--requests", "8", "find all titles",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "loadgen: 8 requests" in out
        assert "internal errs         0" in out

    def test_json_report(self, server, capsys):
        code = main([
            "loadgen", "--url", server.url, "--concurrency", "2",
            "--requests", "4", "--json", "find all titles",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["requests"] == 4
        assert document["internal_errors"] == 0
        assert document["statuses"] == {"200": 4}

    def test_dead_server_exits_nonzero(self, capsys):
        code = main([
            "loadgen", "--url", "http://127.0.0.1:1", "--concurrency", "1",
            "--requests", "2", "--timeout", "1", "find all titles",
        ])
        assert code == 1


class TestStatsUrl:
    def test_scrapes_live_metrics(self, server, capsys):
        main([
            "loadgen", "--url", server.url, "--concurrency", "2",
            "--requests", "4", "find all titles",
        ])
        capsys.readouterr()
        code = main(["stats", "--url", server.url])
        out = capsys.readouterr().out
        assert code == 0
        assert "scraped" in out
        assert "repro_serve_requests_total" in out

    def test_prom_format_passes_text_through(self, server, capsys):
        code = main(["stats", "--url", server.url, "--format", "prom"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_serve_requests_total counter" in out

    def test_json_format(self, server, capsys):
        code = main(["stats", "--url", server.url, "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        document = json.loads(out)
        assert "repro_serve_requests_total" in document

    def test_unreachable_url_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["stats", "--url", "http://127.0.0.1:1"])

    def test_table_shows_the_slo_section(self, server, capsys):
        main([
            "loadgen", "--url", server.url, "--concurrency", "2",
            "--requests", "4", "find all titles",
        ])
        capsys.readouterr()
        code = main(["stats", "--url", server.url])
        out = capsys.readouterr().out
        assert code == 0
        assert "slo:" in out
        assert "availability-query" in out
        assert "burn fast" in out

    def test_server_without_slo_engine_degrades_loudly(
            self, movie_nalix, capsys):
        # slos=() disables the engine: no repro_slo_* family at all —
        # exactly what an old server looks like to the scraper.
        config = ServeConfig(port=0, slos=())
        with ReproServer(nalix=movie_nalix, config=config) as instance:
            code = main(["stats", "--url", instance.url])
        out = capsys.readouterr().out
        assert code == 3
        assert "exposes no repro_slo_* metrics" in out
        # The metric table still renders: degrade, don't die.
        assert "repro_serve_requests_total" in out


class TestTopCommand:
    def test_once_against_live_server(self, server, capsys):
        main([
            "loadgen", "--url", server.url, "--concurrency", "2",
            "--requests", "4", "find all titles",
        ])
        capsys.readouterr()
        code = main(["top", "--url", server.url, "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top" in out
        assert "availability-query" in out
        assert "In flight" in out

    def test_once_against_dead_server(self, capsys):
        code = main(["top", "--url", "http://127.0.0.1:1", "--once"])
        out = capsys.readouterr().out
        assert code == 1
        assert "server unreachable" in out
