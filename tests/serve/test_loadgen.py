"""The load generator against a live in-process server."""

import pytest

from repro.serve import LoadgenConfig, ReproServer, ServeConfig, run_loadgen
from repro.serve.loadgen import default_task_mix


@pytest.fixture(scope="module")
def server(movie_nalix):
    config = ServeConfig(port=0, max_inflight=8)
    with ReproServer(nalix=movie_nalix, config=config) as instance:
        yield instance


def test_default_task_mix_is_the_study_tasks():
    mix = default_task_mix()
    assert len(mix) == 9
    assert all(isinstance(sentence, str) and sentence for sentence in mix)


def test_loadgen_config_requires_a_bound():
    with pytest.raises(ValueError):
        LoadgenConfig("http://localhost:1", requests=None, duration=None)


def test_concurrent_run_is_clean(server):
    config = LoadgenConfig(
        server.url, concurrency=8, requests=48,
        task_mix=["find all titles", "show every movie"],
    )
    report = run_loadgen(config)
    assert report.requests == 48
    assert report.internal_errors == 0
    assert report.transport_errors == 0
    assert set(report.statuses) == {200}
    assert report.qps > 0


def test_server_and_scraped_p99_agree(server):
    server.window.reset()
    config = LoadgenConfig(
        server.url, concurrency=8, requests=64,
        task_mix=["find all titles"],
    )
    report = run_loadgen(config)
    assert report.scraped_p99_seconds is not None
    # The /metrics window and the X-Repro-Seconds headers describe the
    # same observations, so the two p99s must agree (5% is the bench
    # criterion; here the only slack is header rounding).
    assert report.p99_delta_fraction is not None
    assert report.p99_delta_fraction < 0.05


def test_latency_report_shape(server):
    report = run_loadgen(
        LoadgenConfig(server.url, concurrency=2, requests=8,
                      task_mix=["find all titles"])
    )
    client = report.client_latency
    srv = report.server_latency
    assert client["count"] == 8
    assert srv["count"] == 8
    assert client["p50"] <= client["p95"] <= client["p99"]
    assert srv["p99"] > 0
    document = report.to_dict()
    assert document["qps"] == report.qps
    assert document["statuses"] == {"200": 8}
    assert "loadgen: 8 requests" in report.render_text()


def test_rejections_are_not_internal_errors(movie_nalix):
    config = ServeConfig(port=0, max_inflight=8,
                         tenant_rate=0.001, tenant_burst=1.0)
    with ReproServer(nalix=movie_nalix, config=config) as limited:
        report = run_loadgen(
            LoadgenConfig(limited.url, concurrency=2, requests=6,
                          task_mix=["find all titles"])
        )
    assert report.statuses.get(429, 0) > 0
    assert report.internal_errors == 0


def test_sheds_count_separately_and_availability_reflects_them(movie_nalix):
    # A near-zero tenant rate: most requests are shed with 429 +
    # Retry-After.  Sheds are not internal errors, and availability
    # counts only the final usable answers.
    config = ServeConfig(port=0, max_inflight=8,
                         tenant_rate=0.001, tenant_burst=1.0)
    with ReproServer(nalix=movie_nalix, config=config) as limited:
        report = run_loadgen(
            LoadgenConfig(limited.url, concurrency=2, requests=6,
                          task_mix=["find all titles"])
        )
    assert report.sheds > 0
    assert report.shed_statuses.get(429, 0) == report.sheds
    assert report.unclassified_5xx == 0
    assert report.internal_errors == 0
    successes = report.statuses.get(200, 0)
    assert report.availability == pytest.approx(successes / 6)
    document = report.to_dict()
    assert document["sheds"] == report.sheds
    assert document["availability"] == report.availability
    assert "availability" in report.render_text()


def test_retries_convert_sheds_into_availability(movie_nalix):
    # Same throttled server, but the clients honour Retry-After and
    # retry: every logical request eventually lands a 200.
    config = ServeConfig(port=0, max_inflight=8,
                         tenant_rate=5.0, tenant_burst=1.0)
    with ReproServer(nalix=movie_nalix, config=config) as limited:
        report = run_loadgen(
            LoadgenConfig(limited.url, concurrency=2, requests=6,
                          task_mix=["find all titles"], retries=4)
        )
    assert report.statuses.get(200, 0) == 6
    assert report.availability == 1.0
    assert report.retries > 0
    assert "retries" in report.to_dict()


def test_rejected_sentences_count_as_available(server):
    # 422 means the server answered with actionable feedback — the
    # service did its job, so availability does not drop.
    report = run_loadgen(
        LoadgenConfig(server.url, concurrency=2, requests=6,
                      task_mix=["zzzz qqqq xxxx"])
    )
    assert report.statuses.get(422, 0) == 6
    assert report.availability == 1.0
    assert report.internal_errors == 0


def test_availability_with_no_records_is_one():
    from repro.serve.loadgen import LoadgenReport

    report = LoadgenReport(
        LoadgenConfig("http://x", requests=0), [], 0, 0.0
    )
    assert report.availability == 1.0


def test_duration_mode_stops(server):
    report = run_loadgen(
        LoadgenConfig(server.url, concurrency=2, requests=None,
                      duration=0.3, task_mix=["find all titles"])
    )
    assert report.requests > 0
    assert report.elapsed < 5.0
