"""``repro replay``: differential re-execution of an audit log."""

import json

import pytest

from repro.core.interface import NaLIX
from repro.obs.audit import AuditLog
from repro.obs.regression import FAIL, PASS, SKIP, WARN
from repro.serve import ReplayConfig, ReproServer, ServeConfig, run_replay
from repro.serve.replay import classify_row, load_replay_records

SENTENCES = [
    "Return the title of every movie.",
    "Return every movie where year is greater than 1990.",
    "Return the director of every movie.",
]


def _record_log(path, database, sentences=SENTENCES):
    """Serve a few queries with the audit log on, like production."""
    log = AuditLog(str(path))
    nalix = NaLIX(database, audit_log=log)
    for sentence in sentences:
        nalix.ask(sentence)
    log.close()


@pytest.fixture()
def audit_log_path(tmp_path, movie_database):
    path = tmp_path / "access.jsonl"
    _record_log(path, movie_database)
    return path


class TestClassifyRow:
    def test_matching_digest_and_status_pass(self):
        assert classify_row("ab", "ab", "ok", "ok") == (PASS, "")

    def test_digest_mismatch_fails(self):
        verdict, note = classify_row("ab", "cd", "ok", "ok")
        assert verdict == FAIL
        assert "answer drift" in note

    def test_status_transition_with_intact_digest_warns(self):
        verdict, note = classify_row("ab", "ab", "ok", "degraded")
        assert verdict == WARN
        assert "ok -> degraded" in note

    def test_pre_fingerprint_record_skips(self):
        verdict, note = classify_row(None, "ab", "ok", "ok")
        assert verdict == SKIP
        assert "pre-fingerprint" in note

    def test_execution_error_trumps_everything(self):
        verdict, note = classify_row("ab", "ab", "ok", "ok",
                                     execution_error="connection refused")
        assert verdict == FAIL
        assert "connection refused" in note


class TestInProcessReplay:
    def test_fresh_log_replays_100_percent_match(
        self, audit_log_path, movie_database
    ):
        report = run_replay(
            ReplayConfig(str(audit_log_path)),
            nalix=NaLIX(movie_database),
        )
        assert len(report.rows) == len(SENTENCES)
        assert report.counts()[PASS] == len(SENTENCES)
        assert report.exit_code == 0
        assert report.render_text().endswith("replay verdict: PASS")
        assert report.github_annotations() == []

    def test_requires_a_pipeline(self, audit_log_path):
        with pytest.raises(ValueError):
            run_replay(ReplayConfig(str(audit_log_path)))

    def test_mutated_digest_is_answer_drift(
        self, audit_log_path, movie_database
    ):
        records = [
            json.loads(line)
            for line in audit_log_path.read_text().splitlines()
        ]
        records[1]["answer_digest"] = "0" * 16
        audit_log_path.write_text(
            "".join(json.dumps(record) + "\n" for record in records)
        )
        report = run_replay(
            ReplayConfig(str(audit_log_path)),
            nalix=NaLIX(movie_database),
        )
        counts = report.counts()
        assert counts[FAIL] == 1
        assert counts[PASS] == len(SENTENCES) - 1
        assert report.exit_code == 1
        assert report.render_text().endswith("replay verdict: FAIL")
        annotations = report.github_annotations()
        assert len(annotations) == 1
        assert annotations[0].startswith("::error title=answer drift::")

    def test_recorded_status_change_warns_not_fails(
        self, audit_log_path, movie_database
    ):
        records = [
            json.loads(line)
            for line in audit_log_path.read_text().splitlines()
        ]
        records[0]["status"] = "degraded"  # digest left intact
        audit_log_path.write_text(
            "".join(json.dumps(record) + "\n" for record in records)
        )
        report = run_replay(
            ReplayConfig(str(audit_log_path)),
            nalix=NaLIX(movie_database),
        )
        counts = report.counts()
        assert counts[WARN] == 1
        assert counts[FAIL] == 0
        assert report.exit_code == 0
        assert any(
            line.startswith("::warning title=replay status change::")
            for line in report.github_annotations()
        )

    def test_pre_fingerprint_records_skip(
        self, audit_log_path, movie_database
    ):
        records = [
            json.loads(line)
            for line in audit_log_path.read_text().splitlines()
        ]
        del records[2]["answer_digest"]
        audit_log_path.write_text(
            "".join(json.dumps(record) + "\n" for record in records)
        )
        report = run_replay(
            ReplayConfig(str(audit_log_path)),
            nalix=NaLIX(movie_database),
        )
        assert report.counts()[SKIP] == 1
        assert report.exit_code == 0

    def test_event_lines_are_not_replayed(
        self, tmp_path, movie_database
    ):
        path = tmp_path / "access.jsonl"
        log = AuditLog(str(path))
        nalix = NaLIX(movie_database, audit_log=log)
        nalix.ask(SENTENCES[0])
        log.record_event("canary-drift", tasks=["Q1"])
        log.record_event("watchdog-stuck", trace_id="t-1")
        log.close()
        records = load_replay_records(ReplayConfig(str(path)))
        assert len(records) == 1
        report = run_replay(ReplayConfig(str(path)),
                            nalix=NaLIX(movie_database))
        assert len(report.rows) == 1

    def test_rotated_sibling_replays_first(self, tmp_path, movie_database):
        base = tmp_path / "access.jsonl"
        _record_log(tmp_path / "access.jsonl.1", movie_database,
                    sentences=SENTENCES[:1])
        _record_log(base, movie_database, sentences=SENTENCES[1:])
        report = run_replay(ReplayConfig(str(base)),
                            nalix=NaLIX(movie_database))
        assert len(report.rows) == len(SENTENCES)
        assert report.rows[0].sentence == SENTENCES[0]
        assert report.read_stats.files == 2
        report = run_replay(ReplayConfig(str(base), rotated=False),
                            nalix=NaLIX(movie_database))
        assert len(report.rows) == len(SENTENCES) - 1

    def test_limit_caps_the_replay(self, audit_log_path, movie_database):
        report = run_replay(ReplayConfig(str(audit_log_path), limit=2),
                            nalix=NaLIX(movie_database))
        assert len(report.rows) == 2

    def test_latency_deltas_cover_the_quantiles(
        self, audit_log_path, movie_database
    ):
        report = run_replay(ReplayConfig(str(audit_log_path)),
                            nalix=NaLIX(movie_database))
        latency = report.latency()
        for name in ("p50", "p95", "p99"):
            assert latency["recorded"][name] >= 0
            assert latency["replayed"][name] >= 0
            assert isinstance(latency["delta_seconds"][name], float)

    def test_json_report_round_trips(self, audit_log_path, movie_database):
        report = run_replay(ReplayConfig(str(audit_log_path)),
                            nalix=NaLIX(movie_database))
        payload = json.loads(report.to_json())
        assert payload["exit_code"] == 0
        assert payload["counts"]["pass"] == len(SENTENCES)
        assert len(payload["rows"]) == len(SENTENCES)
        assert payload["rows"][0]["recorded_digest"] == \
            payload["rows"][0]["replayed_digest"]


class TestUrlReplay:
    def test_replaying_against_a_live_server_matches(
        self, audit_log_path, movie_database
    ):
        config = ServeConfig(port=0, max_inflight=4)
        with ReproServer(
            nalix=NaLIX(movie_database), config=config
        ) as server:
            report = run_replay(
                ReplayConfig(str(audit_log_path), url=server.url)
            )
        assert report.counts()[PASS] == len(SENTENCES)
        assert report.exit_code == 0
        assert report.target == server.url

    def test_unreachable_server_fails_the_run(self, audit_log_path):
        report = run_replay(
            ReplayConfig(
                str(audit_log_path),
                url="http://127.0.0.1:9",  # discard port: nothing listens
                timeout=0.5,
            )
        )
        assert report.counts()[FAIL] == len(SENTENCES)
        assert report.exit_code == 1
