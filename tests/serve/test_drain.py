"""Graceful shutdown: drain semantics, readiness flip, clean stop.

Includes the drain-while-faulting chaos cases: shutdown arriving while
injected faults (latency + exceptions) are in flight must still produce
classified responses for every admitted request, a complete access log,
and a bounded drain.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.audit import read_audit_log
from repro.serve import ReproServer, ServeConfig


class SlowPipeline:
    """Wraps a NaLIX so every ask takes at least ``delay`` seconds."""

    def __init__(self, inner, delay):
        self._inner = inner
        self.delay = delay

    def ask(self, sentence, **kwargs):
        time.sleep(self.delay)
        return self._inner.ask(sentence, **kwargs)


def http_status(url, payload=None):
    if payload is None:
        request = url
    else:
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"}, method="POST",
        )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


@pytest.fixture
def slow_server(movie_nalix):
    config = ServeConfig(port=0, max_inflight=4)
    server = ReproServer(
        nalix=SlowPipeline(movie_nalix, delay=0.4), config=config
    )
    server.start()
    yield server
    server.stop()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_drain_waits_for_inflight_and_flips_readyz(slow_server):
    server = slow_server
    statuses = []

    def _slow_request():
        statuses.append(
            http_status(server.url + "/query",
                        {"sentence": "find all titles"})
        )

    worker = threading.Thread(target=_slow_request)
    worker.start()
    assert wait_for(lambda: server.admission.inflight == 1)

    drained = {}
    drainer = threading.Thread(
        target=lambda: drained.setdefault("ok", server.drain())
    )
    drainer.start()
    assert wait_for(lambda: server.draining)

    # While draining: not ready, and new work is shed with 503.
    assert http_status(server.url + "/readyz") == 503
    rejected = http_status(server.url + "/query",
                           {"sentence": "find all titles"})
    assert rejected == 503

    worker.join(timeout=10.0)
    drainer.join(timeout=10.0)
    # The in-flight query finished normally; the drain saw it out.
    assert statuses == [200]
    assert drained["ok"] is True
    assert server.admission.inflight == 0


def test_drain_gives_up_after_grace(slow_server):
    server = slow_server
    worker = threading.Thread(
        target=lambda: http_status(server.url + "/query",
                                   {"sentence": "find all titles"})
    )
    worker.start()
    assert wait_for(lambda: server.admission.inflight == 1)
    assert server.drain(grace=0.05) is False  # query needs ~0.4s
    worker.join(timeout=10.0)


def test_stop_shuts_the_listener_down(movie_nalix):
    server = ReproServer(nalix=movie_nalix, config=ServeConfig(port=0))
    server.start()
    url = server.url
    assert http_status(url + "/healthz") == 200
    server.stop()
    with pytest.raises((urllib.error.URLError, OSError)):
        urllib.request.urlopen(url + "/healthz", timeout=2.0)


def test_stop_is_idempotent(movie_nalix):
    server = ReproServer(nalix=movie_nalix, config=ServeConfig(port=0))
    server.start()
    server.stop()
    server.stop()  # does not raise


def post_json(url, payload, timeout=10.0):
    """POST and return (status, parsed JSON body) — errors included."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_drain_while_faulting_yields_classified_responses(
    movie_nalix, tmp_path
):
    """Shutdown mid-chaos: every in-flight faulted request still ends
    classified, logged, and the drain stays bounded."""
    audit_path = tmp_path / "access.jsonl"
    config = ServeConfig(
        port=0, max_inflight=8, audit_path=str(audit_path),
        # Every query stalls 0.25s inside evaluate; 40% also hit an
        # injected translate exception (a classified internal failure).
        fault_plan=["evaluate:delay=0.25", "translate:p=0.4,seed=5"],
        watchdog_interval=0.05,
    )
    server = ReproServer(nalix=movie_nalix, config=config)
    server.start()
    try:
        outcomes = []
        outcomes_lock = threading.Lock()

        def _request():
            outcome = post_json(server.url + "/query",
                                {"sentence": "find all titles"})
            with outcomes_lock:
                outcomes.append(outcome)

        workers = [
            threading.Thread(target=_request, daemon=True) for _ in range(6)
        ]
        for worker in workers:
            worker.start()
        # All six are mid-fault (the 0.25s evaluate stall) when the
        # drain begins — none is turned away as draining.
        assert wait_for(lambda: server.admission.inflight == 6)
        drain_started = time.perf_counter()
        drained = server.drain()
        drain_seconds = time.perf_counter() - drain_started
        for worker in workers:
            worker.join(timeout=10.0)
    finally:
        server.stop()

    # Bounded drain: the in-flight stalls are 0.25s, so the drain saw
    # them out well inside the grace window.
    assert drained is True
    assert drain_seconds < config.drain_grace
    assert len(outcomes) == 6
    for status, body in outcomes:
        # Every admitted request ended classified — a 200 (possibly
        # degraded) or a taxonomy-classified failure, never a bare 500.
        assert status in (200, 500, 504)
        assert body["status"] in ("ok", "degraded", "failed")
        if status != 200:
            assert body["error_class"]
            assert any(
                entry["code"] == "injected-fault"
                for entry in body["feedback"]
            )

    # The access log is complete: one classified record per request.
    entries = [
        entry for entry in read_audit_log(str(audit_path))
        if "http_status" in entry
    ]
    assert len(entries) == 6
    assert all(entry["status"] in ("ok", "degraded", "failed")
               for entry in entries)


def test_sigterm_during_in_flight_faults_drains_cleanly(
    movie_nalix, tmp_path
):
    """The CLI path: SIGTERM mid-fault → drain → classified responses."""
    audit_path = tmp_path / "access.jsonl"
    config = ServeConfig(
        port=0, max_inflight=4, audit_path=str(audit_path),
        fault_plan=["evaluate:delay=0.3"],
    )
    server = ReproServer(nalix=movie_nalix, config=config)
    server.start()
    statuses = []

    def _request():
        statuses.append(
            http_status(server.url + "/query",
                        {"sentence": "find all titles"})
        )

    worker = threading.Thread(target=_request, daemon=True)

    def _fire_and_kill():
        worker.start()
        if wait_for(lambda: server.admission.inflight == 1):
            os.kill(os.getpid(), signal.SIGTERM)

    killer = threading.Thread(target=_fire_and_kill, daemon=True)
    killer.start()
    # Blocks in the main thread (signal-handler rules) until the
    # SIGTERM lands, then drains and stops.
    signum = server.serve_until_signal()
    worker.join(timeout=10.0)
    killer.join(timeout=10.0)

    assert signum == signal.SIGTERM
    assert statuses == [200]  # the in-flight faulted query was seen out
    assert server.admission.inflight == 0
    entries = [
        entry for entry in read_audit_log(str(audit_path))
        if "http_status" in entry
    ]
    assert len(entries) == 1
    assert entries[0]["http_status"] == 200


def test_stop_flushes_and_closes_the_access_log(movie_nalix, tmp_path):
    config = ServeConfig(port=0, audit_path=str(tmp_path / "access.jsonl"))
    server = ReproServer(nalix=movie_nalix, config=config)
    server.start()
    assert http_status(server.url + "/query",
                       {"sentence": "find all titles"}) == 200
    server.stop()
    with open(config.audit_path, encoding="utf-8") as handle:
        entries = [json.loads(line) for line in handle]
    assert len(entries) == 1
    assert entries[0]["http_status"] == 200
