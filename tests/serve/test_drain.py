"""Graceful shutdown: drain semantics, readiness flip, clean stop."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ReproServer, ServeConfig


class SlowPipeline:
    """Wraps a NaLIX so every ask takes at least ``delay`` seconds."""

    def __init__(self, inner, delay):
        self._inner = inner
        self.delay = delay

    def ask(self, sentence, **kwargs):
        time.sleep(self.delay)
        return self._inner.ask(sentence, **kwargs)


def http_status(url, payload=None):
    if payload is None:
        request = url
    else:
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"}, method="POST",
        )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


@pytest.fixture
def slow_server(movie_nalix):
    config = ServeConfig(port=0, max_inflight=4)
    server = ReproServer(
        nalix=SlowPipeline(movie_nalix, delay=0.4), config=config
    )
    server.start()
    yield server
    server.stop()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_drain_waits_for_inflight_and_flips_readyz(slow_server):
    server = slow_server
    statuses = []

    def _slow_request():
        statuses.append(
            http_status(server.url + "/query",
                        {"sentence": "find all titles"})
        )

    worker = threading.Thread(target=_slow_request)
    worker.start()
    assert wait_for(lambda: server.admission.inflight == 1)

    drained = {}
    drainer = threading.Thread(
        target=lambda: drained.setdefault("ok", server.drain())
    )
    drainer.start()
    assert wait_for(lambda: server.draining)

    # While draining: not ready, and new work is shed with 503.
    assert http_status(server.url + "/readyz") == 503
    rejected = http_status(server.url + "/query",
                           {"sentence": "find all titles"})
    assert rejected == 503

    worker.join(timeout=10.0)
    drainer.join(timeout=10.0)
    # The in-flight query finished normally; the drain saw it out.
    assert statuses == [200]
    assert drained["ok"] is True
    assert server.admission.inflight == 0


def test_drain_gives_up_after_grace(slow_server):
    server = slow_server
    worker = threading.Thread(
        target=lambda: http_status(server.url + "/query",
                                   {"sentence": "find all titles"})
    )
    worker.start()
    assert wait_for(lambda: server.admission.inflight == 1)
    assert server.drain(grace=0.05) is False  # query needs ~0.4s
    worker.join(timeout=10.0)


def test_stop_shuts_the_listener_down(movie_nalix):
    server = ReproServer(nalix=movie_nalix, config=ServeConfig(port=0))
    server.start()
    url = server.url
    assert http_status(url + "/healthz") == 200
    server.stop()
    with pytest.raises((urllib.error.URLError, OSError)):
        urllib.request.urlopen(url + "/healthz", timeout=2.0)


def test_stop_is_idempotent(movie_nalix):
    server = ReproServer(nalix=movie_nalix, config=ServeConfig(port=0))
    server.start()
    server.stop()
    server.stop()  # does not raise


def test_stop_flushes_and_closes_the_access_log(movie_nalix, tmp_path):
    config = ServeConfig(port=0, audit_path=str(tmp_path / "access.jsonl"))
    server = ReproServer(nalix=movie_nalix, config=config)
    server.start()
    assert http_status(server.url + "/query",
                       {"sentence": "find all titles"}) == 200
    server.stop()
    with open(config.audit_path, encoding="utf-8") as handle:
        entries = [json.loads(line) for line in handle]
    assert len(entries) == 1
    assert entries[0]["http_status"] == 200
