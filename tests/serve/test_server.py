"""The HTTP service: endpoints, status mapping, headers, access log."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import ReproServer, ServeConfig


def http_get(url):
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def http_post_json(url, payload, headers=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def server(movie_nalix, tmp_path_factory):
    audit_path = tmp_path_factory.mktemp("serve") / "access.jsonl"
    config = ServeConfig(port=0, max_inflight=8, allow_xquery=True,
                         audit_path=str(audit_path))
    with ReproServer(nalix=movie_nalix, config=config) as instance:
        yield instance


class TestOpsEndpoints:
    def test_healthz(self, server):
        status, _, body = http_get(server.url + "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_readyz_while_serving(self, server):
        status, _, _ = http_get(server.url + "/readyz")
        assert status == 200

    def test_metrics_exposition(self, server):
        http_post_json(server.url + "/query",
                       {"sentence": "find all titles"})
        status, headers, body = http_get(server.url + "/metrics")
        assert status == 200
        assert "text/plain" in headers["Content-Type"]
        text = body.decode("utf-8")
        assert "repro_serve_requests_total" in text
        assert "repro_window_endpoint:_query_seconds" in text

    def test_statusz(self, server):
        status, _, body = http_get(server.url + "/statusz")
        assert status == 200
        document = json.loads(body)
        assert document["draining"] is False
        assert document["admission"]["max_inflight"] == 8
        assert document["uptime_seconds"] > 0

    def test_statusz_surfaces_self_healing_state(self, server):
        status, _, body = http_get(server.url + "/statusz")
        assert status == 200
        document = json.loads(body)
        # One breaker per failure class, all healthy on a quiet server.
        breakers = document["breakers"]
        assert set(breakers) == {"internal", "exhausted"}
        for snapshot in breakers.values():
            assert snapshot["state"] == "closed"
            assert snapshot["opened_total"] == 0
        brownout = document["brownout"]
        assert brownout["level"] == 0
        assert brownout["budget_scale"] == 1.0
        assert brownout["pre_degrade"] is None
        watchdog = document["watchdog"]
        assert watchdog["inflight"] == 0
        for key in ("stuck_total", "expired_total", "recovered_total"):
            assert watchdog[key] >= 0

    def test_unknown_endpoint_is_404(self, server):
        status, _, body = http_get(server.url + "/nope")
        assert status == 404
        assert json.loads(body)["error"] == "not-found"


class TestQueryEndpoint:
    def test_ok_query(self, server):
        status, headers, body = http_post_json(
            server.url + "/query", {"sentence": "find all titles"},
            headers={"X-Repro-Tenant": "alice"},
        )
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["tenant"] == "alice"
        assert document["result_count"] > 0
        assert document["results"]
        assert float(headers["X-Repro-Seconds"]) > 0
        assert headers["X-Repro-Request-Id"].startswith("r")

    def test_get_query_via_params(self, server):
        status, _, body = http_get(server.url + "/query?q=find+all+titles")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_response_carries_the_answer_fingerprint(self, server):
        status, _, body = http_post_json(
            server.url + "/query", {"sentence": "find all titles"}
        )
        assert status == 200
        digest = json.loads(body)["answer_digest"]
        assert len(digest) == 16
        int(digest, 16)  # hex or raise
        # The fingerprint is deterministic: same question, same digest.
        _, _, again = http_post_json(
            server.url + "/query", {"sentence": "find all titles"}
        )
        assert json.loads(again)["answer_digest"] == digest

    def test_rejected_query_is_422_with_feedback(self, server):
        status, _, body = http_post_json(
            server.url + "/query", {"sentence": "gibberish blurble fnord"}
        )
        assert status == 422
        document = json.loads(body)
        assert document["status"] == "rejected"
        assert document["feedback"]
        assert document["feedback"][0]["severity"] == "error"

    def test_explain_embeds_provenance(self, server):
        status, _, body = http_post_json(
            server.url + "/query",
            {"sentence": "find all titles", "explain": True},
        )
        assert status == 200
        document = json.loads(body)
        assert "explain" in document
        assert "provenance" in document["explain"]

    def test_limit_truncates_results(self, server):
        status, _, body = http_post_json(
            server.url + "/query", {"sentence": "find all titles", "limit": 1}
        )
        document = json.loads(body)
        assert len(document["results"]) == 1
        assert document["truncated"] is True
        assert document["result_count"] > 1

    def test_missing_sentence_is_400(self, server):
        status, _, body = http_post_json(server.url + "/query", {})
        assert status == 400
        assert json.loads(body)["error"] == "missing-sentence"

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10.0)
        assert info.value.code == 400

    def test_bad_timeout_is_400(self, server):
        status, _, body = http_post_json(
            server.url + "/query",
            {"sentence": "find all titles", "timeout": "soon"},
        )
        assert status == 400
        assert json.loads(body)["error"] == "bad-timeout"

    def test_access_log_records_request(self, server):
        status, headers, _ = http_post_json(
            server.url + "/query", {"sentence": "find all titles"},
            headers={"X-Repro-Tenant": "logged"},
        )
        assert status == 200
        request_id = headers["X-Repro-Request-Id"]
        with open(server.audit.path, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle]
        mine = [e for e in entries if e.get("request_id") == request_id]
        assert len(mine) == 1
        assert mine[0]["tenant"] == "logged"
        assert mine[0]["endpoint"] == "/query"
        assert mine[0]["http_status"] == 200
        # Every logged query is replayable: the access-log line
        # carries the same answer fingerprint the response returned.
        assert len(mine[0]["answer_digest"]) == 16


class TestXQueryEndpoint:
    def test_valid_query_runs(self, server):
        status, _, body = http_post_json(
            server.url + "/xquery",
            {"query": 'for $m in doc("movie.xml")//movie return $m/title'},
        )
        assert status == 200
        assert json.loads(body)["result_count"] > 0

    def test_unparseable_query_is_400(self, server):
        status, _, body = http_post_json(
            server.url + "/xquery", {"query": "for $$ nonsense"}
        )
        assert status == 400
        assert json.loads(body)["error"] == "xquery-parse"

    def test_lint_gate_refuses_bad_queries(self, server):
        # An unbound variable is a qlint error: execution must be refused.
        status, _, body = http_post_json(
            server.url + "/xquery", {"query": "return $nowhere"}
        )
        assert status == 400
        document = json.loads(body)
        assert document["error"] in ("xquery-rejected", "xquery-parse")

    def test_disabled_by_default(self, movie_nalix):
        with ReproServer(nalix=movie_nalix,
                         config=ServeConfig(port=0)) as plain:
            status, _, body = http_post_json(
                plain.url + "/xquery", {"query": 'doc("movie.xml")//movie'}
            )
        assert status == 403
        assert json.loads(body)["error"] == "xquery-disabled"


class TestTenantLimits:
    def test_rate_limited_tenant_gets_429(self, movie_nalix):
        config = ServeConfig(port=0, tenant_rate=0.001, tenant_burst=1.0)
        with ReproServer(nalix=movie_nalix, config=config) as limited:
            first, _, _ = http_post_json(
                limited.url + "/query", {"sentence": "find all titles"},
                headers={"X-Repro-Tenant": "greedy"},
            )
            second, headers, body = http_post_json(
                limited.url + "/query", {"sentence": "find all titles"},
                headers={"X-Repro-Tenant": "greedy"},
            )
            other, _, _ = http_post_json(
                limited.url + "/query", {"sentence": "find all titles"},
                headers={"X-Repro-Tenant": "patient"},
            )
        assert first == 200
        assert second == 429
        assert json.loads(body)["error"] == "admission-rate"
        assert int(headers["Retry-After"]) >= 1
        assert other == 200  # limits are per tenant
