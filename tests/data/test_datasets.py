"""Unit tests for the datasets."""

from repro.data import DblpConfig, bib_document, generate_dblp, movies_document
from repro.xmlstore.serializer import serialize


class TestMovies:
    def test_figure1_shape(self):
        document = movies_document()
        years = document.root.child_elements("year")
        assert len(years) == 2
        movies = [m for y in years for m in y.child_elements("movie")]
        assert len(movies) == 5

    def test_figure1_contents(self):
        document = movies_document()
        directors = [
            node.string_value()
            for node in document.iter_elements()
            if node.tag == "director"
        ]
        assert directors.count("Ron Howard") == 3
        assert "Steven Soderbergh" in directors
        assert "Peter Jackson" in directors

    def test_custom_entries(self):
        document = movies_document(
            entries=[("1999", [("The Matrix", "Wachowski")])]
        )
        assert document.root.child_elements("year")[0].child_elements(
            "movie"
        )[0].child_elements("title")[0].string_value() == "The Matrix"


class TestBib:
    def test_books_and_prices(self):
        document = bib_document()
        books = document.root.child_elements("book")
        assert len(books) == 4
        assert all(book.get_attribute("year") for book in books)
        assert all(book.child_elements("price") for book in books)

    def test_editor_book_present(self):
        document = bib_document()
        assert any(
            book.child_elements("editor")
            for book in document.root.child_elements("book")
        )


class TestDblpGenerator:
    def test_shape_matches_paper(self):
        document = generate_dblp(DblpConfig(books=50, articles=100))
        books = document.root.child_elements("book")
        articles = document.root.child_elements("article")
        assert len(books) == 50
        assert len(articles) == 100  # twice as many articles as books

    def test_default_is_twice_articles(self):
        config = DblpConfig(books=30)
        assert config.articles == 60

    def test_deterministic(self):
        first = generate_dblp(DblpConfig(books=20, articles=20, seed=5))
        second = generate_dblp(DblpConfig(books=20, articles=20, seed=5))
        assert serialize(first.root) == serialize(second.root)

    def test_seed_changes_content(self):
        first = generate_dblp(DblpConfig(books=20, articles=20, seed=5))
        second = generate_dblp(DblpConfig(books=20, articles=20, seed=6))
        assert serialize(first.root) != serialize(second.root)

    def test_anchor_entries_present(self):
        document = generate_dblp(DblpConfig(books=10, articles=0))
        titles = {
            node.string_value()
            for node in document.iter_elements()
            if node.tag == "title"
        }
        assert "Data on the Web" in titles
        assert "TCP/IP Illustrated" in titles

    def test_task_answers_nonempty(self):
        document = generate_dblp()
        text = serialize(document.root)
        assert "Suciu" in text
        assert "Addison-Wesley" in text
        assert "XML" in text

    def test_book_fields(self):
        document = generate_dblp(DblpConfig(books=10, articles=5))
        for book in document.root.child_elements("book"):
            assert book.child_elements("author")
            assert book.child_elements("title")
            assert book.child_elements("publisher")
            assert book.child_elements("year")

    def test_article_fields(self):
        document = generate_dblp(DblpConfig(books=5, articles=10))
        for article in document.root.child_elements("article"):
            assert article.child_elements("journal")
            assert article.child_elements("pages")

    def test_paper_scale_config(self):
        config = DblpConfig.paper_scale()
        assert config.books == 2400
        assert config.articles == 4800
